//! The divisor computation of the paper's data-partitioning scheme
//! (Algorithm 4, lines 4–10).
//!
//! A *divisor* has one entry per table dimension; entry `i` is the number
//! of equal segments dimension `i` is cut into. Block size in dimension `i`
//! is therefore `extent_i / divisor_i`, so each entry must divide its
//! extent. Only the `dim` *largest* dimensions (by extent, ties broken by
//! lowest index — confirmed against Table I row 2) are actually split; the
//! rest get divisor 1.
//!
//! ## Pseudocode vs. published tables
//!
//! Algorithm 4 literally computes `div = ⌊√(nᵢ+1)⌋` and decrements until it
//! divides the extent, which yields `div = 1` for prime extents. The
//! published block-size tables (I–VI) however show *block size 1* for every
//! selected prime-extent dimension (e.g. extent 7 → block 1 in Table V,
//! extent 3 → block 1 in Tables I–III), i.e. `div = extent`. Since a
//! selected dimension with `div = 1` would not be partitioned at all, the
//! implementation evidently promotes `div = 1` to `div = extent` for
//! selected dimensions. [`DivisorRule::TableConsistent`] (the default)
//! reproduces the published tables; [`DivisorRule::LiteralPseudocode`]
//! keeps the literal text for ablation.

use crate::shape::Shape;
use serde::{Deserialize, Serialize};

/// Which reading of Algorithm 4's divisor computation to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DivisorRule {
    /// Reproduces Tables I–VI: a selected dimension whose
    /// square-root-descent divisor is 1 (prime extent) is split into
    /// `extent` segments of size 1.
    #[default]
    TableConsistent,
    /// The literal pseudocode: square-root descent only; prime extents end
    /// up unsplit even when selected.
    LiteralPseudocode,
}

/// Per-dimension segment counts for block partitioning.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Divisor {
    per_dim: Vec<usize>,
}

/// Largest divisor of `extent` that is ≤ ⌊√extent⌋ (Algorithm 4 lines 6–8).
pub fn sqrt_descent_divisor(extent: usize) -> usize {
    assert!(extent > 0, "extent must be positive");
    let mut div = isqrt(extent).max(1);
    while !extent.is_multiple_of(div) {
        div -= 1;
    }
    div
}

/// Integer square root (floor).
pub fn isqrt(n: usize) -> usize {
    if n < 2 {
        return n;
    }
    let mut x = (n as f64).sqrt() as usize;
    // Float rounding can be off by one in either direction near perfect
    // squares; correct both ways.
    while x.checked_mul(x).is_none_or(|sq| sq > n) {
        x -= 1;
    }
    while (x + 1) * (x + 1) <= n {
        x += 1;
    }
    x
}

impl Divisor {
    /// Computes the divisor for `shape`, splitting only the `dim_limit`
    /// largest dimensions (the paper's `dim ∈ {3..9}` parameter).
    pub fn compute(shape: &Shape, dim_limit: usize, rule: DivisorRule) -> Self {
        let extents = shape.extents();
        // Rank dimensions by extent, descending; ties → lowest index.
        let mut order: Vec<usize> = (0..extents.len()).collect();
        order.sort_by(|&a, &b| extents[b].cmp(&extents[a]).then(a.cmp(&b)));
        let selected: Vec<bool> = {
            let mut sel = vec![false; extents.len()];
            for &d in order.iter().take(dim_limit) {
                sel[d] = true;
            }
            sel
        };
        let per_dim = extents
            .iter()
            .zip(&selected)
            .map(|(&e, &sel)| {
                if !sel {
                    return 1;
                }
                let div = sqrt_descent_divisor(e);
                match rule {
                    DivisorRule::TableConsistent if div == 1 => e,
                    _ => div,
                }
            })
            .collect();
        Self { per_dim }
    }

    /// A divisor that leaves the table as a single block.
    pub fn identity(ndim: usize) -> Self {
        Self {
            per_dim: vec![1; ndim],
        }
    }

    /// Builds a divisor from explicit per-dimension segment counts.
    ///
    /// # Panics
    ///
    /// Panics if any entry is zero or does not divide its extent.
    pub fn from_parts(shape: &Shape, per_dim: &[usize]) -> Self {
        assert_eq!(per_dim.len(), shape.ndim(), "divisor arity mismatch");
        for (d, (&div, &e)) in per_dim.iter().zip(shape.extents()).enumerate() {
            assert!(div > 0, "divisor[{d}] must be positive");
            assert_eq!(e % div, 0, "divisor[{d}]={div} must divide extent {e}");
        }
        Self {
            per_dim: per_dim.to_vec(),
        }
    }

    #[inline]
    /// Segment count per dimension.
    pub fn per_dim(&self) -> &[usize] {
        &self.per_dim
    }

    #[inline]
    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.per_dim.len()
    }

    /// Total number of blocks (product of segment counts).
    pub fn num_blocks(&self) -> usize {
        self.per_dim.iter().product()
    }

    /// Block size in each dimension for `shape`.
    pub fn block_sizes(&self, shape: &Shape) -> Vec<usize> {
        shape
            .extents()
            .iter()
            .zip(&self.per_dim)
            .map(|(&e, &d)| e / d)
            .collect()
    }

    /// Number of dimensions actually split (divisor > 1).
    pub fn split_dims(&self) -> usize {
        self.per_dim.iter().filter(|&&d| d > 1).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isqrt_exact() {
        for n in 0..2000usize {
            let r = isqrt(n);
            assert!(r * r <= n && (r + 1) * (r + 1) > n, "isqrt({n}) = {r}");
        }
    }

    #[test]
    fn sqrt_descent_examples() {
        assert_eq!(sqrt_descent_divisor(6), 2);
        assert_eq!(sqrt_descent_divisor(4), 2);
        assert_eq!(sqrt_descent_divisor(8), 2);
        assert_eq!(sqrt_descent_divisor(9), 3);
        assert_eq!(sqrt_descent_divisor(16), 4);
        assert_eq!(sqrt_descent_divisor(15), 3);
        assert_eq!(sqrt_descent_divisor(18), 3);
        assert_eq!(sqrt_descent_divisor(3), 1);
        assert_eq!(sqrt_descent_divisor(7), 1);
        assert_eq!(sqrt_descent_divisor(1), 1);
    }

    /// Table I row 1: table (6,4,6,6,4), DIM3 blocks (3,4,3,3,4),
    /// DIM5 blocks (3,2,3,3,2).
    #[test]
    fn paper_table_i_row1() {
        let shape = Shape::new(&[6, 4, 6, 6, 4]);
        let d3 = Divisor::compute(&shape, 3, DivisorRule::TableConsistent);
        assert_eq!(d3.block_sizes(&shape), vec![3, 4, 3, 3, 4]);
        let d5 = Divisor::compute(&shape, 5, DivisorRule::TableConsistent);
        assert_eq!(d5.block_sizes(&shape), vec![3, 2, 3, 3, 2]);
    }

    /// Table I row 2: ties among equal extents are broken by lowest index.
    #[test]
    fn paper_table_i_row2_tie_break() {
        let shape = Shape::new(&[2, 6, 3, 4, 6, 4]);
        let d3 = Divisor::compute(&shape, 3, DivisorRule::TableConsistent);
        assert_eq!(d3.block_sizes(&shape), vec![2, 3, 3, 2, 3, 4]);
        let d5 = Divisor::compute(&shape, 5, DivisorRule::TableConsistent);
        assert_eq!(d5.block_sizes(&shape), vec![2, 3, 1, 2, 3, 2]);
    }

    /// Table II row 1: prime extent 5 selected ⇒ block size 1.
    #[test]
    fn paper_table_ii_row1_prime_promotion() {
        let shape = Shape::new(&[5, 3, 6, 3, 4, 4, 2]);
        let d3 = Divisor::compute(&shape, 3, DivisorRule::TableConsistent);
        assert_eq!(d3.block_sizes(&shape), vec![1, 3, 3, 3, 2, 4, 2]);
        let d5 = Divisor::compute(&shape, 5, DivisorRule::TableConsistent);
        assert_eq!(d5.block_sizes(&shape), vec![1, 1, 3, 3, 2, 2, 2]);
    }

    /// Table III row 1: 4 dimensions, dim_limit larger than ndim splits all.
    #[test]
    fn paper_table_iii_row1() {
        let shape = Shape::new(&[3, 16, 15, 18]);
        let d3 = Divisor::compute(&shape, 3, DivisorRule::TableConsistent);
        assert_eq!(d3.block_sizes(&shape), vec![3, 4, 5, 6]);
        let d5 = Divisor::compute(&shape, 5, DivisorRule::TableConsistent);
        assert_eq!(d5.block_sizes(&shape), vec![1, 4, 5, 6]);
    }

    /// Table V row 1 (DIM7): large 8-dimensional case with several primes.
    #[test]
    fn paper_table_v_row1_dim7() {
        let shape = Shape::new(&[5, 6, 3, 7, 6, 4, 8, 3]);
        let d7 = Divisor::compute(&shape, 7, DivisorRule::TableConsistent);
        assert_eq!(d7.block_sizes(&shape), vec![1, 3, 1, 1, 3, 2, 4, 3]);
    }

    #[test]
    fn literal_pseudocode_leaves_primes_unsplit() {
        let shape = Shape::new(&[5, 3, 6, 3, 4, 4, 2]);
        let d3 = Divisor::compute(&shape, 3, DivisorRule::LiteralPseudocode);
        // Extent 5 is selected but prime: literal rule keeps divisor 1.
        assert_eq!(d3.block_sizes(&shape), vec![5, 3, 3, 3, 2, 4, 2]);
    }

    #[test]
    fn divisors_always_divide() {
        let shape = Shape::new(&[6, 4, 6, 6, 4, 7, 9, 10]);
        for dim_limit in 0..=9 {
            for rule in [DivisorRule::TableConsistent, DivisorRule::LiteralPseudocode] {
                let d = Divisor::compute(&shape, dim_limit, rule);
                for (&div, &e) in d.per_dim().iter().zip(shape.extents()) {
                    assert_eq!(e % div, 0);
                }
                assert!(d.split_dims() <= dim_limit);
            }
        }
    }

    #[test]
    fn identity_divisor_is_one_block() {
        let d = Divisor::identity(4);
        assert_eq!(d.num_blocks(), 1);
        assert_eq!(d.split_dims(), 0);
    }

    #[test]
    fn from_parts_validates() {
        let shape = Shape::new(&[6, 4]);
        let d = Divisor::from_parts(&shape, &[3, 2]);
        assert_eq!(d.num_blocks(), 6);
        assert_eq!(d.block_sizes(&shape), vec![2, 2]);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn from_parts_rejects_nondivisor() {
        Divisor::from_parts(&Shape::new(&[6, 4]), &[4, 2]);
    }
}
