//! Dense storage for higher-dimensional tables.

use crate::shape::Shape;

/// A dense higher-dimensional table in row-major order.
///
/// Cells are addressed either by multi-index (convenient) or flat index
/// (hot paths). The DP algorithms in `pcmax-ptas` keep the table flat and
/// index arithmetic explicit, exactly as the paper's implementations do —
/// this type is the shared vocabulary between the sequential, rayon,
/// blocked, and simulated-GPU sweeps so their results can be compared
/// cell-for-cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NdTable<T> {
    shape: Shape,
    data: Vec<T>,
}

impl<T: Clone> NdTable<T> {
    /// Creates a table with every cell set to `fill`.
    pub fn filled(shape: Shape, fill: T) -> Self {
        let data = vec![fill; shape.size()];
        Self { shape, data }
    }
}

impl<T> NdTable<T> {
    /// Wraps existing row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != shape.size()`.
    pub fn from_vec(shape: Shape, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            shape.size(),
            "data length {} does not match shape size {}",
            data.len(),
            shape.size()
        );
        Self { shape, data }
    }

    #[inline]
    /// The table's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    #[inline]
    /// Number of cells.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    #[inline]
    /// Whether the table has no cells (never true for valid shapes).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    /// The cells as a row-major slice.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    #[inline]
    /// The cells as a mutable row-major slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the table and returns the flat data.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    #[inline]
    /// Cell at a row-major flat index.
    pub fn get_flat(&self, flat: usize) -> &T {
        &self.data[flat]
    }

    #[inline]
    /// Mutable cell at a row-major flat index.
    pub fn get_flat_mut(&mut self, flat: usize) -> &mut T {
        &mut self.data[flat]
    }

    #[inline]
    /// Cell at a multi-index.
    pub fn get(&self, idx: &[usize]) -> &T {
        &self.data[self.shape.flatten(idx)]
    }

    #[inline]
    /// Mutable cell at a multi-index.
    pub fn get_mut(&mut self, idx: &[usize]) -> &mut T {
        let flat = self.shape.flatten(idx);
        &mut self.data[flat]
    }

    /// Applies `f` to every cell, producing a new table of the same shape.
    pub fn map<U>(&self, f: impl FnMut(&T) -> U) -> NdTable<U> {
        NdTable {
            shape: self.shape.clone(),
            data: self.data.iter().map(f).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filled_and_indexing() {
        let shape = Shape::new(&[2, 3]);
        let mut t = NdTable::filled(shape, 0u32);
        *t.get_mut(&[1, 2]) = 7;
        assert_eq!(*t.get(&[1, 2]), 7);
        assert_eq!(*t.get_flat(5), 7);
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn from_vec_roundtrip() {
        let shape = Shape::new(&[2, 2]);
        let t = NdTable::from_vec(shape, vec![1, 2, 3, 4]);
        assert_eq!(*t.get(&[0, 1]), 2);
        assert_eq!(t.into_vec(), vec![1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_length_mismatch_panics() {
        NdTable::from_vec(Shape::new(&[2, 2]), vec![1, 2, 3]);
    }

    #[test]
    fn map_preserves_shape() {
        let shape = Shape::new(&[2, 2]);
        let t = NdTable::from_vec(shape, vec![1u32, 2, 3, 4]);
        let u = t.map(|&x| x * 10);
        assert_eq!(u.as_slice(), &[10, 20, 30, 40]);
        assert_eq!(u.shape(), t.shape());
    }
}
