//! Simulation output: per-kernel records and device-level aggregates.

use serde::{Deserialize, Serialize};

/// Timeline entry for one executed kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelRecord {
    /// Kernel display name.
    pub name: String,
    /// Stream the kernel ran on.
    pub stream: usize,
    /// When the launch was admitted (start of its overhead phase), ns.
    pub start_ns: f64,
    /// Completion time, ns.
    pub end_ns: f64,
    /// Warps in the launch.
    pub warps: usize,
    /// Global-memory transactions after coalescing.
    pub transactions: u64,
    /// Raw global-memory accesses.
    pub accesses: u64,
    /// Warp-cycles of execution work.
    pub work_cycles: f64,
}

/// Aggregate result of a simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Completion time of the last kernel, ns.
    pub total_ns: f64,
    /// Per-kernel timeline (launch order preserved per stream).
    pub kernels: Vec<KernelRecord>,
    /// Fraction of warp-slot·time actually used while the device was busy.
    pub occupancy: f64,
    /// Device-wide transactions across all kernels.
    pub total_transactions: u64,
    /// Device-wide raw accesses across all kernels.
    pub total_accesses: u64,
}

impl SimReport {
    /// Total modeled milliseconds (the unit of the paper's figures).
    pub fn millis(&self) -> f64 {
        self.total_ns / 1e6
    }

    /// Effective-bus utilisation proxy: useful accesses per transaction,
    /// normalised so 1.0 = perfectly coalesced 32-wide word access and
    /// 1/32 ≈ fully strided (the paper's worst case, §III.B).
    pub fn bus_utilisation(&self) -> f64 {
        if self.total_transactions == 0 {
            return 1.0;
        }
        (self.total_accesses as f64 / self.total_transactions as f64) / 32.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn units_and_bus_utilisation() {
        let r = SimReport {
            total_ns: 3.0e6,
            kernels: vec![],
            occupancy: 0.5,
            total_transactions: 10,
            total_accesses: 320,
        };
        assert!((r.millis() - 3.0).abs() < 1e-12);
        assert!((r.bus_utilisation() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_transactions_is_full_utilisation() {
        let r = SimReport {
            total_ns: 0.0,
            kernels: vec![],
            occupancy: 0.0,
            total_transactions: 0,
            total_accesses: 0,
        };
        assert_eq!(r.bus_utilisation(), 1.0);
    }
}
