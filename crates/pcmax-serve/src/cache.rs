//! Sharded LRU cache for DP solutions, budgeted in **bytes**.
//!
//! Lookups hash the key to one of `shards` independently-locked shards,
//! so concurrent workers rarely contend on the same mutex. Each shard is
//! a classic slab-backed LRU: a `HashMap` from key to slot index plus an
//! intrusive doubly-linked recency list threaded through the slab, giving
//! O(1) get/insert/evict without per-operation allocation (beyond the
//! slab growth itself).
//!
//! Capacity is a **byte budget per shard**, not an entry count: every
//! insert carries the entry's estimated resident cost, and the shard
//! evicts least-recently-used entries until the budget holds. Cached DP
//! solutions vary in size by orders of magnitude (a bare `OPT(N)` vs. a
//! machine-configuration list for a k² dimensional table), so counting
//! entries — as this cache originally did — lets a burst of large-`k`
//! requests blow past any real memory target. The entry count survives
//! as a derived statistic ([`ShardedCache::len`]).

use crate::stats::CacheReport;
use std::collections::HashMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

const NIL: usize = usize::MAX;

struct Node<K, V> {
    key: K,
    value: V,
    cost: u64,
    prev: usize,
    next: usize,
}

/// One shard: slab + index + recency list, guarded by a single mutex.
struct Shard<K, V> {
    slab: Vec<Node<K, V>>,
    index: HashMap<K, usize>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    bytes: u64,
}

impl<K: Eq + Hash + Clone, V: Clone> Shard<K, V> {
    fn new() -> Self {
        Self {
            slab: Vec::new(),
            index: HashMap::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            bytes: 0,
        }
    }

    /// Unlinks slot `i` from the recency list.
    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slab[i].prev, self.slab[i].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    /// Links slot `i` at the head (most recently used).
    fn link_front(&mut self, i: usize) {
        self.slab[i].prev = NIL;
        self.slab[i].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn get(&mut self, key: &K) -> Option<V> {
        let &i = self.index.get(key)?;
        self.unlink(i);
        self.link_front(i);
        Some(self.slab[i].value.clone())
    }

    /// Evicts the LRU entry. Returns `false` when the shard is empty or
    /// `keep` is the only entry left.
    fn evict_tail(&mut self, keep: usize) -> bool {
        let lru = self.tail;
        if lru == NIL || lru == keep {
            return false;
        }
        self.unlink(lru);
        let old = self.index.remove(&self.slab[lru].key);
        debug_assert_eq!(old, Some(lru));
        self.bytes -= self.slab[lru].cost;
        self.free.push(lru);
        true
    }

    /// Inserts `key` at cost `cost`, evicting LRU entries until the shard
    /// fits `budget`. Returns how many entries were evicted.
    ///
    /// An entry costlier than the whole budget still resides (evicting
    /// everything else): refusing it would make the hottest key
    /// permanently uncacheable, which is worse than briefly overshooting
    /// one shard.
    fn insert(&mut self, key: K, value: V, cost: u64, budget: u64) -> u64 {
        let mut evicted = 0u64;
        if let Some(&i) = self.index.get(&key) {
            self.bytes = self.bytes - self.slab[i].cost + cost;
            self.slab[i].value = value;
            self.slab[i].cost = cost;
            self.unlink(i);
            self.link_front(i);
            while self.bytes > budget && self.evict_tail(i) {
                evicted += 1;
            }
            return evicted;
        }
        while self.bytes + cost > budget && self.evict_tail(NIL) {
            evicted += 1;
        }
        let i = match self.free.pop() {
            Some(slot) => {
                self.slab[slot] = Node {
                    key: key.clone(),
                    value,
                    cost,
                    prev: NIL,
                    next: NIL,
                };
                slot
            }
            None => {
                self.slab.push(Node {
                    key: key.clone(),
                    value,
                    cost,
                    prev: NIL,
                    next: NIL,
                });
                self.slab.len() - 1
            }
        };
        self.bytes += cost;
        self.index.insert(key, i);
        self.link_front(i);
        evicted
    }
}

/// A sharded, byte-budgeted LRU cache with atomic hit/miss/eviction
/// counters.
pub struct ShardedCache<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    budget_per_shard: u64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<K: Eq + Hash + Clone, V: Clone> ShardedCache<K, V> {
    /// A cache of `shards` shards, each holding up to `budget_per_shard`
    /// bytes of entries (by the cost callers pass to
    /// [`ShardedCache::insert`]).
    pub fn new(shards: usize, budget_per_shard: u64) -> Self {
        assert!(shards > 0, "cache needs at least one shard");
        assert!(budget_per_shard > 0, "shard byte budget must be positive");
        Self {
            shards: (0..shards).map(|_| Mutex::new(Shard::new())).collect(),
            budget_per_shard,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The per-shard byte budget this cache was built with.
    pub fn budget_per_shard(&self) -> u64 {
        self.budget_per_shard
    }

    /// Total byte budget across all shards.
    pub fn budget_bytes(&self) -> u64 {
        self.budget_per_shard * self.shards.len() as u64
    }

    fn shard_of(&self, key: &K) -> &Mutex<Shard<K, V>> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % self.shards.len()]
    }

    /// Looks up `key`, marking it most recently used on a hit.
    pub fn get(&self, key: &K) -> Option<V> {
        let result = self.shard_of(key).lock().expect("cache shard poisoned").get(key);
        match result {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        result
    }

    /// Inserts (or refreshes) `key` at an estimated resident cost of
    /// `cost` bytes, evicting LRU entries until the shard's byte budget
    /// holds.
    pub fn insert(&self, key: K, value: V, cost: u64) {
        let evicted = self
            .shard_of(&key)
            .lock()
            .expect("cache shard poisoned")
            .insert(key, value, cost, self.budget_per_shard);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Resident entries across all shards (derived stat; the budget is
    /// [`ShardedCache::bytes`]).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").index.len())
            .sum()
    }

    /// Estimated resident bytes across all shards.
    pub fn bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").bytes)
            .sum()
    }

    /// Whether no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn report(&self) -> CacheReport {
        CacheReport {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len(),
            bytes: self.bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn get_and_insert_roundtrip() {
        let cache: ShardedCache<u64, String> = ShardedCache::new(4, 1 << 10);
        assert_eq!(cache.get(&1), None);
        cache.insert(1, "one".into(), 16);
        assert_eq!(cache.get(&1).as_deref(), Some("one"));
        let report = cache.report();
        assert_eq!((report.hits, report.misses, report.entries), (1, 1, 1));
        assert_eq!(report.bytes, 16);
    }

    #[test]
    fn byte_pressure_evicts_in_lru_order() {
        // Single shard so the recency order is total; budget fits exactly
        // three 10-byte entries.
        let cache: ShardedCache<u64, u64> = ShardedCache::new(1, 30);
        for i in 0..3 {
            cache.insert(i, i * 10, 10);
        }
        // Touch 0 so 1 becomes the LRU entry.
        assert_eq!(cache.get(&0), Some(0));
        cache.insert(3, 30, 10);
        assert_eq!(cache.get(&1), None, "LRU entry should be evicted");
        assert_eq!(cache.get(&0), Some(0));
        assert_eq!(cache.get(&2), Some(20));
        assert_eq!(cache.get(&3), Some(30));
        assert_eq!(cache.report().evictions, 1);
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.bytes(), 30);
    }

    #[test]
    fn one_large_insert_evicts_many_small_entries() {
        // Regression for byte (not entry-count) accounting: a 25-byte
        // entry displaces multiple 10-byte entries — and the survivors
        // are exactly the most recently used.
        let cache: ShardedCache<u64, u64> = ShardedCache::new(1, 40);
        for i in 0..4 {
            cache.insert(i, i, 10);
        }
        cache.insert(9, 99, 25);
        assert_eq!(cache.len(), 2, "25B + 10B is all a 40B budget holds");
        assert_eq!(cache.bytes(), 35);
        assert_eq!(cache.report().evictions, 3);
        assert_eq!(cache.get(&0), None, "oldest evicted first");
        assert_eq!(cache.get(&1), None);
        assert_eq!(cache.get(&2), None);
        assert_eq!(cache.get(&3), Some(3), "newest small entry survives");
        assert_eq!(cache.get(&9), Some(99));
    }

    #[test]
    fn entry_larger_than_the_budget_still_resides_alone() {
        let cache: ShardedCache<u64, u64> = ShardedCache::new(1, 20);
        cache.insert(1, 10, 5);
        cache.insert(2, 20, 100);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&2), Some(20));
        assert_eq!(cache.get(&1), None);
    }

    #[test]
    fn reinsert_refreshes_cost_and_recency() {
        let cache: ShardedCache<u64, u64> = ShardedCache::new(1, 20);
        cache.insert(1, 10, 10);
        cache.insert(2, 20, 10);
        cache.insert(1, 11, 5); // refresh: cheaper now, and MRU
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.bytes(), 15);
        assert_eq!(cache.report().evictions, 0);
        assert_eq!(cache.get(&1), Some(11));
        // 2 is now LRU; byte pressure evicts it, not 1.
        cache.insert(3, 30, 10);
        assert_eq!(cache.get(&2), None);
        assert_eq!(cache.get(&1), Some(11));
    }

    #[test]
    fn refresh_that_grows_past_the_budget_evicts_others() {
        let cache: ShardedCache<u64, u64> = ShardedCache::new(1, 20);
        cache.insert(1, 10, 8);
        cache.insert(2, 20, 8);
        cache.insert(2, 21, 16); // grows: 8 + 16 > 20
        assert_eq!(cache.get(&1), None, "growth must evict the LRU entry");
        assert_eq!(cache.get(&2), Some(21));
        assert_eq!(cache.bytes(), 16);
    }

    #[test]
    fn eviction_slots_are_reused() {
        let cache: ShardedCache<u64, u64> = ShardedCache::new(1, 20);
        for i in 0..100 {
            cache.insert(i, i, 10);
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.report().evictions, 98);
        assert_eq!(cache.get(&99), Some(99));
        assert_eq!(cache.get(&98), Some(98));
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let cache: Arc<ShardedCache<u64, u64>> = Arc::new(ShardedCache::new(8, 64 * 16));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..256u64 {
                        let key = (t * 1000 + i) % 96;
                        cache.insert(key, key * 2, 16);
                        if let Some(v) = cache.get(&key) {
                            assert_eq!(v, key * 2);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(cache.bytes() <= 8 * 64 * 16);
    }
}
