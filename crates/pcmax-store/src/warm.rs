//! Persistent warm-start log: a tiny manifest plus a checksummed append
//! log of opaque key→value records.
//!
//! `pcmax-serve` uses this as the disk tier under its DP-solution cache:
//! keys are serialized gcd-canonical `DpProblem::canonical_key`s, values
//! are serialized cached solutions. A restarted worker reopens the same
//! directory, re-indexes the log, and answers previously-cached requests
//! from disk instead of recomputing. `pcmax-warmsync` ships these
//! records between workers, so every record carries a **monotonic
//! sequence number**: a puller that has seen everything up to seq `s`
//! fetches only the suffix with [`WarmLog::entries_since`].
//!
//! On-disk layout under the log directory (format v2):
//!
//! ```text
//! MANIFEST         "pcmax-warm v2\nlog warm.<gen>.log\n"
//! warm.<gen>.log   repeated records:
//!                    u32 key_len · u32 val_len · u64 seq
//!                    · u64 fnv1a(seq_le‖key‖val) · key · val
//! ```
//!
//! All integers little-endian. Reopening scans the log front to back;
//! the first corrupt or truncated record ends the scan (a torn tail from
//! a crash mid-append loses only that record). Duplicate keys keep the
//! **last** record (last write wins), which makes re-appends meaningful
//! for replication: a replica that receives a fresher shipped value
//! overwrites its stale copy. Because re-appends leave dead records
//! behind, the log self-compacts: once it exceeds a size floor and dead
//! bytes outweigh live ones, the live records are rewritten (original
//! seqs preserved) into a new generation file and the manifest is
//! atomically renamed over to point at it.
//!
//! Format v1 (`pcmax-warm v1`, 16-byte headers, no seq, first write
//! wins) is still readable: a v1 directory is scanned with the old
//! layout — v1 appends skipped duplicate keys so no key appears twice —
//! assigned ordinal seqs, and immediately compacted into a v2
//! generation file.

use crate::page::fnv1a;
use crate::StoreError;
use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// First line of a current-format manifest.
pub const WARM_MAGIC: &str = "pcmax-warm v2";
/// First line of a legacy (pre-seq, first-write-wins) manifest.
pub const WARM_MAGIC_V1: &str = "pcmax-warm v1";
const LOG_NAME_V1: &str = "warm.log";
const RECORD_HEADER_V1: usize = 16;
const RECORD_HEADER: usize = 24;
/// Logs smaller than this never compact — rewriting a few KiB buys
/// nothing and the floor keeps unit-test logs deterministic.
const COMPACT_MIN_BYTES: u64 = 4096;

/// One live record enumerated out of a [`WarmLog`]: key bytes, value
/// bytes, and the monotonic sequence number the log assigned at append.
pub type WarmEntry = (Vec<u8>, Vec<u8>, u64);

/// A persistent key→value log with an in-RAM index.
#[derive(Debug)]
pub struct WarmLog {
    dir: PathBuf,
    inner: Mutex<WarmInner>,
    rehydrated: u64,
    hits: AtomicU64,
    appends: AtomicU64,
    compactions: AtomicU64,
}

#[derive(Debug, Clone, Copy)]
struct IndexEntry {
    /// Sequence number assigned when the live record was appended.
    seq: u64,
    /// Byte offset of the value inside the current generation file.
    offset: u64,
    vlen: u32,
}

#[derive(Debug)]
struct WarmInner {
    /// key bytes → live record metadata.
    index: HashMap<Vec<u8>, IndexEntry>,
    file: File,
    /// Name of the current generation file (second manifest line).
    log_name: String,
    /// Generation counter embedded in the log name.
    gen: u64,
    /// Next sequence number to assign.
    next_seq: u64,
    /// Bytes of the current generation file (live + dead records).
    total_bytes: u64,
    /// Bytes of live records only (frame size of every indexed entry).
    live_bytes: u64,
}

fn frame_len(klen: usize, vlen: usize) -> u64 {
    (RECORD_HEADER + klen + vlen) as u64
}

fn record_checksum(seq: u64, key: &[u8], value: &[u8]) -> u64 {
    let mut body = Vec::with_capacity(8 + key.len() + value.len());
    body.extend_from_slice(&seq.to_le_bytes());
    body.extend_from_slice(key);
    body.extend_from_slice(value);
    fnv1a(&body)
}

impl WarmLog {
    /// Opens (creating if needed) a warm-log directory, validates the
    /// manifest, and re-indexes the append log. The number of records
    /// recovered is reported as `store.rehydrated`. A legacy v1 log is
    /// read with the old layout and upgraded in place.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| StoreError::io(&dir, e))?;
        let manifest = dir.join("MANIFEST");
        let mut legacy = false;
        let mut log_name = "warm.0.log".to_string();
        if manifest.exists() {
            let text = fs::read_to_string(&manifest).map_err(|e| StoreError::io(&manifest, e))?;
            match text.lines().next() {
                Some(WARM_MAGIC) => {}
                Some(WARM_MAGIC_V1) => legacy = true,
                _ => {
                    return Err(StoreError::Corrupt {
                        detail: format!("bad warm manifest at {}", manifest.display()),
                    });
                }
            }
            if let Some(name) = text
                .lines()
                .find_map(|line| line.strip_prefix("log "))
                .map(str::trim)
            {
                log_name = name.to_string();
            } else if legacy {
                log_name = LOG_NAME_V1.to_string();
            }
        } else {
            fs::write(&manifest, format!("{WARM_MAGIC}\nlog {log_name}\n"))
                .map_err(|e| StoreError::io(&manifest, e))?;
        }
        let gen = Self::parse_gen(&log_name);
        let log_path = dir.join(&log_name);
        let mut file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(&log_path)
            .map_err(|e| StoreError::io(&log_path, e))?;
        let scanned = if legacy {
            Self::scan_v1(&mut file, &log_path)?
        } else {
            Self::scan(&mut file, &log_path)?
        };
        let actual_len = file
            .metadata()
            .map_err(|e| StoreError::io(&log_path, e))?
            .len();
        if scanned.valid_len < actual_len {
            // Torn tail from a crash mid-append: drop it so later appends
            // land where the next scan will find them.
            file.set_len(scanned.valid_len)
                .map_err(|e| StoreError::io(&log_path, e))?;
        }
        let rehydrated = scanned.index.len() as u64;
        pcmax_obs::registry::global()
            .counter("store.rehydrated")
            .add(rehydrated);
        let log = Self {
            dir,
            inner: Mutex::new(WarmInner {
                index: scanned.index,
                file,
                log_name,
                gen,
                next_seq: scanned.max_seq + 1,
                total_bytes: scanned.valid_len,
                live_bytes: scanned.live_bytes,
            }),
            rehydrated,
            hits: AtomicU64::new(0),
            appends: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
        };
        if legacy {
            // Upgrade: rewrite the v1 records as v2 and swap the
            // manifest, so every later open takes the fast path.
            let mut inner = log.inner.lock().expect("warm lock");
            log.compact_locked(&mut inner)?;
        }
        Ok(log)
    }

    fn parse_gen(log_name: &str) -> u64 {
        log_name
            .strip_prefix("warm.")
            .and_then(|rest| rest.strip_suffix(".log"))
            .and_then(|digits| digits.parse().ok())
            .unwrap_or(0)
    }

    /// Front-to-back v2 log scan; stops at the first bad record. Later
    /// records for a key shadow earlier ones (last write wins).
    fn scan(file: &mut File, path: &Path) -> Result<Scanned, StoreError> {
        let mut bytes = Vec::new();
        file.seek(SeekFrom::Start(0))
            .and_then(|_| file.read_to_end(&mut bytes))
            .map_err(|e| StoreError::io(path, e))?;
        let mut index: HashMap<Vec<u8>, IndexEntry> = HashMap::new();
        let mut live_bytes = 0u64;
        let mut max_seq = 0u64;
        let mut at = 0usize;
        while bytes.len() - at >= RECORD_HEADER {
            let klen = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4")) as usize;
            let vlen = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().expect("4")) as usize;
            let seq = u64::from_le_bytes(bytes[at + 8..at + 16].try_into().expect("8"));
            let checksum = u64::from_le_bytes(bytes[at + 16..at + 24].try_into().expect("8"));
            let body = at + RECORD_HEADER;
            let Some(end) = body.checked_add(klen).and_then(|k| k.checked_add(vlen)) else {
                break;
            };
            if end > bytes.len()
                || record_checksum(seq, &bytes[body..body + klen], &bytes[body + klen..end])
                    != checksum
            {
                break; // torn or corrupt tail
            }
            let key = bytes[body..body + klen].to_vec();
            let entry = IndexEntry {
                seq,
                offset: (body + klen) as u64,
                vlen: vlen as u32,
            };
            if let Some(old) = index.insert(key, entry) {
                live_bytes -= frame_len(klen, old.vlen as usize);
            }
            live_bytes += frame_len(klen, vlen);
            max_seq = max_seq.max(seq);
            at = end;
        }
        Ok(Scanned {
            index,
            valid_len: at as u64,
            live_bytes,
            max_seq,
        })
    }

    /// Legacy v1 scan (16-byte headers, no seq): ordinal seqs are
    /// assigned in scan order. v1 appends skipped already-indexed keys,
    /// so no key appears twice on disk.
    fn scan_v1(file: &mut File, path: &Path) -> Result<Scanned, StoreError> {
        let mut bytes = Vec::new();
        file.seek(SeekFrom::Start(0))
            .and_then(|_| file.read_to_end(&mut bytes))
            .map_err(|e| StoreError::io(path, e))?;
        let mut index: HashMap<Vec<u8>, IndexEntry> = HashMap::new();
        let mut max_seq = 0u64;
        let mut at = 0usize;
        while bytes.len() - at >= RECORD_HEADER_V1 {
            let klen = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4")) as usize;
            let vlen = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().expect("4")) as usize;
            let checksum = u64::from_le_bytes(bytes[at + 8..at + 16].try_into().expect("8"));
            let body = at + RECORD_HEADER_V1;
            let Some(end) = body.checked_add(klen).and_then(|k| k.checked_add(vlen)) else {
                break;
            };
            if end > bytes.len() || fnv1a(&bytes[body..end]) != checksum {
                break;
            }
            let key = bytes[body..body + klen].to_vec();
            max_seq += 1;
            index.entry(key).or_insert(IndexEntry {
                seq: max_seq,
                offset: (body + klen) as u64,
                vlen: vlen as u32,
            });
            at = end;
        }
        // live_bytes is only used to decide compaction; the upgrade
        // compacts unconditionally, so an estimate in the new frame
        // size is fine.
        let live_bytes = index
            .iter()
            .map(|(k, e)| frame_len(k.len(), e.vlen as usize))
            .sum();
        Ok(Scanned {
            index,
            valid_len: at as u64,
            live_bytes,
            max_seq,
        })
    }

    /// The directory this log persists under.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Records recovered from disk when this log was opened.
    pub fn rehydrated(&self) -> u64 {
        self.rehydrated
    }

    /// Successful [`Self::get`] lookups since open (disk-tier hits).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Records appended since open.
    pub fn appends(&self) -> u64 {
        self.appends.load(Ordering::Relaxed)
    }

    /// Generation rewrites performed since open.
    pub fn compactions(&self) -> u64 {
        self.compactions.load(Ordering::Relaxed)
    }

    /// Number of distinct keys currently indexed.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("warm lock").index.len()
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Highest sequence number assigned so far (0 if none).
    pub fn max_seq(&self) -> u64 {
        self.inner.lock().expect("warm lock").next_seq - 1
    }

    /// Bytes of the current generation file, live and dead records both
    /// — what the log actually occupies on disk.
    pub fn disk_bytes(&self) -> u64 {
        self.inner.lock().expect("warm lock").total_bytes
    }

    /// Bytes of live (indexed) records only.
    pub fn live_bytes(&self) -> u64 {
        self.inner.lock().expect("warm lock").live_bytes
    }

    /// Whether `key` is indexed (no I/O).
    pub fn contains(&self, key: &[u8]) -> bool {
        self.inner.lock().expect("warm lock").index.contains_key(key)
    }

    /// Sequence number of the live record for `key`, if any (no I/O).
    pub fn seq_of(&self, key: &[u8]) -> Option<u64> {
        self.inner
            .lock()
            .expect("warm lock")
            .index
            .get(key)
            .map(|e| e.seq)
    }

    /// `(fnv1a(key), seq)` for every live record — the shippable
    /// digest of this log. Order is unspecified.
    pub fn digest(&self) -> Vec<(u64, u64)> {
        let inner = self.inner.lock().expect("warm lock");
        inner
            .index
            .iter()
            .map(|(key, entry)| (fnv1a(key), entry.seq))
            .collect()
    }

    /// Reads the value stored for `key`, if any.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        let mut inner = self.inner.lock().expect("warm lock");
        let Some(&IndexEntry { offset, vlen, .. }) = inner.index.get(key) else {
            return Ok(None);
        };
        let path = self.dir.join(&inner.log_name);
        let mut value = vec![0u8; vlen as usize];
        inner
            .file
            .seek(SeekFrom::Start(offset))
            .and_then(|_| inner.file.read_exact(&mut value))
            .map_err(|e| StoreError::io(&path, e))?;
        self.hits.fetch_add(1, Ordering::Relaxed);
        Ok(Some(value))
    }

    /// Live records with sequence number strictly above `since` whose
    /// key hash falls in `lo..=hi`, ordered by seq — the suffix a
    /// puller is missing. `(0, u64::MAX)` spans every key.
    pub fn entries_since(
        &self,
        since: u64,
        lo: u64,
        hi: u64,
    ) -> Result<Vec<WarmEntry>, StoreError> {
        let mut inner = self.inner.lock().expect("warm lock");
        let mut picked: Vec<(Vec<u8>, IndexEntry)> = inner
            .index
            .iter()
            .filter(|(key, entry)| {
                entry.seq > since && {
                    let h = fnv1a(key);
                    lo <= h && h <= hi
                }
            })
            .map(|(key, entry)| (key.clone(), *entry))
            .collect();
        picked.sort_by_key(|(_, entry)| entry.seq);
        let path = self.dir.join(&inner.log_name);
        let mut out = Vec::with_capacity(picked.len());
        for (key, entry) in picked {
            let mut value = vec![0u8; entry.vlen as usize];
            inner
                .file
                .seek(SeekFrom::Start(entry.offset))
                .and_then(|_| inner.file.read_exact(&mut value))
                .map_err(|e| StoreError::io(&path, e))?;
            out.push((key, value, entry.seq));
        }
        Ok(out)
    }

    /// Drops `key` from the index. The dead record's bytes are
    /// reclaimed at the next compaction; until then a crash-reopen
    /// resurrects the key (removal is a budget-eviction aid for the
    /// replication tier, not a durability promise).
    pub fn remove(&self, key: &[u8]) -> bool {
        let mut inner = self.inner.lock().expect("warm lock");
        if let Some(old) = inner.index.remove(key) {
            inner.live_bytes -= frame_len(key.len(), old.vlen as usize);
            true
        } else {
            false
        }
    }

    /// Appends a record — last write wins: re-appending a key shadows
    /// the previous value and bumps its seq. Returns the assigned
    /// sequence number. May trigger a compaction when dead bytes
    /// outweigh live ones past a size floor.
    pub fn append(&self, key: &[u8], value: &[u8]) -> Result<u64, StoreError> {
        let mut inner = self.inner.lock().expect("warm lock");
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let path = self.dir.join(&inner.log_name);
        let mut frame = Vec::with_capacity(RECORD_HEADER + key.len() + value.len());
        frame.extend_from_slice(&(key.len() as u32).to_le_bytes());
        frame.extend_from_slice(&(value.len() as u32).to_le_bytes());
        frame.extend_from_slice(&seq.to_le_bytes());
        frame.extend_from_slice(&record_checksum(seq, key, value).to_le_bytes());
        frame.extend_from_slice(key);
        frame.extend_from_slice(value);
        // Append mode: the kernel positions every write at EOF. Record
        // where the value will land before the write moves the cursor.
        let end = inner
            .file
            .seek(SeekFrom::End(0))
            .map_err(|e| StoreError::io(&path, e))?;
        inner
            .file
            .write_all(&frame)
            .and_then(|_| inner.file.flush())
            .map_err(|e| StoreError::io(&path, e))?;
        let value_at = end + (RECORD_HEADER + key.len()) as u64;
        let entry = IndexEntry {
            seq,
            offset: value_at,
            vlen: value.len() as u32,
        };
        if let Some(old) = inner.index.insert(key.to_vec(), entry) {
            inner.live_bytes -= frame_len(key.len(), old.vlen as usize);
        }
        inner.live_bytes += frame.len() as u64;
        inner.total_bytes = end + frame.len() as u64;
        self.appends.fetch_add(1, Ordering::Relaxed);
        if inner.total_bytes >= COMPACT_MIN_BYTES && inner.total_bytes >= 2 * inner.live_bytes {
            self.compact_locked(&mut inner)?;
        }
        Ok(seq)
    }

    /// Forces a compaction regardless of thresholds.
    pub fn compact(&self) -> Result<(), StoreError> {
        let mut inner = self.inner.lock().expect("warm lock");
        self.compact_locked(&mut inner)
    }

    /// Rewrites the live records (seqs preserved, seq order) into a new
    /// generation file, atomically swaps the manifest to point at it,
    /// and deletes the old generation.
    fn compact_locked(&self, inner: &mut WarmInner) -> Result<(), StoreError> {
        let old_name = inner.log_name.clone();
        let old_path = self.dir.join(&old_name);
        let new_gen = inner.gen + 1;
        let new_name = format!("warm.{new_gen}.log");
        let new_path = self.dir.join(&new_name);
        let mut live: Vec<(Vec<u8>, IndexEntry)> = inner
            .index
            .iter()
            .map(|(key, entry)| (key.clone(), *entry))
            .collect();
        live.sort_by_key(|(_, entry)| entry.seq);
        let mut new_file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&new_path)
            .map_err(|e| StoreError::io(&new_path, e))?;
        let mut new_index = HashMap::with_capacity(live.len());
        let mut at = 0u64;
        for (key, entry) in live {
            let mut value = vec![0u8; entry.vlen as usize];
            inner
                .file
                .seek(SeekFrom::Start(entry.offset))
                .and_then(|_| inner.file.read_exact(&mut value))
                .map_err(|e| StoreError::io(&old_path, e))?;
            let mut frame = Vec::with_capacity(RECORD_HEADER + key.len() + value.len());
            frame.extend_from_slice(&(key.len() as u32).to_le_bytes());
            frame.extend_from_slice(&(value.len() as u32).to_le_bytes());
            frame.extend_from_slice(&entry.seq.to_le_bytes());
            frame.extend_from_slice(&record_checksum(entry.seq, &key, &value).to_le_bytes());
            frame.extend_from_slice(&key);
            frame.extend_from_slice(&value);
            new_file
                .write_all(&frame)
                .map_err(|e| StoreError::io(&new_path, e))?;
            let value_at = at + (RECORD_HEADER + key.len()) as u64;
            new_index.insert(
                key,
                IndexEntry {
                    seq: entry.seq,
                    offset: value_at,
                    vlen: entry.vlen,
                },
            );
            at += frame.len() as u64;
        }
        new_file
            .sync_all()
            .map_err(|e| StoreError::io(&new_path, e))?;
        // Atomic swap: the manifest rename is the commit point. A crash
        // before it leaves the old manifest + old log (new file is
        // garbage-collected as unreferenced); a crash after it leaves
        // the new manifest + new log.
        let manifest = self.dir.join("MANIFEST");
        let manifest_tmp = self.dir.join("MANIFEST.tmp");
        fs::write(&manifest_tmp, format!("{WARM_MAGIC}\nlog {new_name}\n"))
            .map_err(|e| StoreError::io(&manifest_tmp, e))?;
        fs::rename(&manifest_tmp, &manifest).map_err(|e| StoreError::io(&manifest, e))?;
        if old_path != new_path {
            let _ = fs::remove_file(&old_path);
        }
        // Later appends go through the append-mode invariants (every
        // write lands at EOF), so swap in an append-mode handle.
        drop(new_file);
        let new_file = OpenOptions::new()
            .read(true)
            .append(true)
            .open(&new_path)
            .map_err(|e| StoreError::io(&new_path, e))?;
        inner.index = new_index;
        inner.file = new_file;
        inner.log_name = new_name;
        inner.gen = new_gen;
        inner.total_bytes = at;
        inner.live_bytes = at;
        self.compactions.fetch_add(1, Ordering::Relaxed);
        pcmax_obs::registry::global()
            .counter("store.compactions")
            .add(1);
        Ok(())
    }
}

#[derive(Debug)]
struct Scanned {
    index: HashMap<Vec<u8>, IndexEntry>,
    valid_len: u64,
    live_bytes: u64,
    max_seq: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pcmax-store-warm-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn appends_then_reads_back() {
        let dir = tmp_dir("rw");
        let log = WarmLog::open(&dir).unwrap();
        assert!(log.is_empty());
        assert_eq!(log.append(b"alpha", b"first value").unwrap(), 1);
        assert_eq!(log.append(b"beta", b"").unwrap(), 2);
        assert_eq!(log.get(b"alpha").unwrap().unwrap(), b"first value");
        assert_eq!(log.get(b"beta").unwrap().unwrap(), b"");
        assert_eq!(log.get(b"gamma").unwrap(), None);
        assert_eq!(log.hits(), 2);
        assert_eq!(log.appends(), 2);
        // Last write wins: a re-append shadows and bumps the seq.
        assert_eq!(log.append(b"alpha", b"second value").unwrap(), 3);
        assert_eq!(log.get(b"alpha").unwrap().unwrap(), b"second value");
        assert_eq!(log.seq_of(b"alpha"), Some(3));
        assert_eq!(log.appends(), 3);
        assert_eq!(log.len(), 2);
        assert_eq!(log.max_seq(), 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_rehydrates_the_index() {
        let dir = tmp_dir("reopen");
        {
            let log = WarmLog::open(&dir).unwrap();
            log.append(b"k1", b"v1").unwrap();
            log.append(b"k2", b"v2").unwrap();
            log.append(b"k1", b"v1b").unwrap();
            assert_eq!(log.rehydrated(), 0, "fresh log recovered nothing");
        }
        let log = WarmLog::open(&dir).unwrap();
        assert_eq!(log.rehydrated(), 2);
        assert_eq!(log.len(), 2);
        assert_eq!(log.get(b"k2").unwrap().unwrap(), b"v2");
        // Last write won across the reopen, and seqs survived it.
        assert_eq!(log.get(b"k1").unwrap().unwrap(), b"v1b");
        assert_eq!(log.seq_of(b"k1"), Some(3));
        assert_eq!(log.max_seq(), 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_loses_only_the_last_record() {
        let dir = tmp_dir("torn");
        {
            let log = WarmLog::open(&dir).unwrap();
            log.append(b"good", b"kept").unwrap();
            log.append(b"bad", b"torn away").unwrap();
        }
        // Simulate a crash mid-append: chop bytes off the tail.
        let manifest = fs::read_to_string(dir.join("MANIFEST")).unwrap();
        let log_name = manifest
            .lines()
            .find_map(|l| l.strip_prefix("log "))
            .unwrap()
            .to_string();
        let path = dir.join(&log_name);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let log = WarmLog::open(&dir).unwrap();
        assert_eq!(log.rehydrated(), 1);
        assert_eq!(log.get(b"good").unwrap().unwrap(), b"kept");
        assert_eq!(log.get(b"bad").unwrap(), None);
        // The log keeps accepting appends after recovery, and recovery
        // truncated the torn bytes so the new record lands scannably.
        log.append(b"bad", b"rewritten").unwrap();
        assert_eq!(log.get(b"bad").unwrap().unwrap(), b"rewritten");
        drop(log);
        let reopened = WarmLog::open(&dir).unwrap();
        assert_eq!(reopened.rehydrated(), 2);
        assert_eq!(reopened.get(b"bad").unwrap().unwrap(), b"rewritten");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn foreign_manifest_is_rejected() {
        let dir = tmp_dir("manifest");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("MANIFEST"), "something else\n").unwrap();
        assert!(matches!(
            WarmLog::open(&dir),
            Err(StoreError::Corrupt { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn legacy_v1_log_is_read_and_upgraded() {
        let dir = tmp_dir("v1");
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join("MANIFEST"),
            format!("{WARM_MAGIC_V1}\nlog {LOG_NAME_V1}\n"),
        )
        .unwrap();
        // Hand-build a v1 log: u32 klen · u32 vlen · u64 fnv1a(key‖val).
        let mut bytes = Vec::new();
        for (k, v) in [(&b"old1"[..], &b"a"[..]), (&b"old2"[..], &b"bb"[..])] {
            bytes.extend_from_slice(&(k.len() as u32).to_le_bytes());
            bytes.extend_from_slice(&(v.len() as u32).to_le_bytes());
            let mut body = k.to_vec();
            body.extend_from_slice(v);
            bytes.extend_from_slice(&fnv1a(&body).to_le_bytes());
            bytes.extend_from_slice(&body);
        }
        fs::write(dir.join(LOG_NAME_V1), &bytes).unwrap();
        let log = WarmLog::open(&dir).unwrap();
        assert_eq!(log.rehydrated(), 2);
        assert_eq!(log.get(b"old1").unwrap().unwrap(), b"a");
        assert_eq!(log.get(b"old2").unwrap().unwrap(), b"bb");
        assert_eq!(log.seq_of(b"old1"), Some(1));
        assert_eq!(log.compactions(), 1, "upgrade rewrote to v2");
        // The manifest now points at a v2 generation, v1 file is gone.
        let manifest = fs::read_to_string(dir.join("MANIFEST")).unwrap();
        assert!(manifest.starts_with(WARM_MAGIC));
        assert!(!dir.join(LOG_NAME_V1).exists());
        let reopened = WarmLog::open(&dir).unwrap();
        assert_eq!(reopened.rehydrated(), 2);
        assert_eq!(reopened.get(b"old2").unwrap().unwrap(), b"bb");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reappends_of_one_key_stay_bounded_on_disk() {
        // Regression for unbounded growth: before compaction existed, N
        // re-appends of one key kept all N records on disk.
        let dir = tmp_dir("compact");
        let log = WarmLog::open(&dir).unwrap();
        let value = vec![0xabu8; 1024];
        for _ in 0..64 {
            log.append(b"the-one-key", &value).unwrap();
        }
        let one_record = frame_len(b"the-one-key".len(), value.len());
        // 64 KiB of appends must have compacted down near one live
        // record; allow the post-compaction tail the threshold permits.
        assert!(log.compactions() > 0, "threshold compaction never fired");
        assert!(
            log.disk_bytes() < COMPACT_MIN_BYTES + 2 * one_record,
            "disk bytes {} not bounded (one record = {one_record})",
            log.disk_bytes()
        );
        assert_eq!(log.len(), 1);
        // The survivor is the last write with its original seq.
        assert_eq!(log.seq_of(b"the-one-key"), Some(64));
        assert_eq!(log.get(b"the-one-key").unwrap().unwrap(), value);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn entries_since_returns_only_the_missing_suffix() {
        let dir = tmp_dir("suffix");
        let log = WarmLog::open(&dir).unwrap();
        log.append(b"a", b"1").unwrap();
        log.append(b"b", b"2").unwrap();
        log.append(b"c", b"3").unwrap();
        let all = log.entries_since(0, 0, u64::MAX).unwrap();
        assert_eq!(all.len(), 3);
        assert!(all.windows(2).all(|w| w[0].2 < w[1].2), "seq-ordered");
        let suffix = log.entries_since(2, 0, u64::MAX).unwrap();
        assert_eq!(suffix.len(), 1);
        assert_eq!(suffix[0].0, b"c");
        assert_eq!(suffix[0].2, 3);
        // Re-appending `a` moves it past the watermark.
        log.append(b"a", b"1b").unwrap();
        let suffix = log.entries_since(3, 0, u64::MAX).unwrap();
        assert_eq!(suffix.len(), 1);
        assert_eq!(suffix[0].0, b"a");
        assert_eq!(suffix[0].1, b"1b");
        // Hash-range filter: a range containing only `b`'s hash.
        let hb = fnv1a(b"b");
        let only_b = log.entries_since(0, hb, hb).unwrap();
        assert_eq!(only_b.len(), 1);
        assert_eq!(only_b[0].0, b"b");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn remove_drops_the_key_until_next_append() {
        let dir = tmp_dir("remove");
        let log = WarmLog::open(&dir).unwrap();
        log.append(b"k", b"v").unwrap();
        assert!(log.remove(b"k"));
        assert!(!log.remove(b"k"));
        assert_eq!(log.get(b"k").unwrap(), None);
        assert_eq!(log.len(), 0);
        log.append(b"k", b"v2").unwrap();
        assert_eq!(log.get(b"k").unwrap().unwrap(), b"v2");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn digest_lists_every_live_key() {
        let dir = tmp_dir("digest");
        let log = WarmLog::open(&dir).unwrap();
        log.append(b"x", b"1").unwrap();
        log.append(b"y", b"2").unwrap();
        log.append(b"x", b"3").unwrap();
        let mut digest = log.digest();
        digest.sort_unstable();
        let mut want = vec![(fnv1a(b"x"), 3u64), (fnv1a(b"y"), 2u64)];
        want.sort_unstable();
        assert_eq!(digest, want);
        fs::remove_dir_all(&dir).unwrap();
    }
}
