#!/usr/bin/env bash
# Tier-1 verification (see ROADMAP.md): release build + full test suite.
# CI and local pre-push both run exactly this script, so the gate cannot
# drift between the two.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
