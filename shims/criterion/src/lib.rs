//! Offline shim for criterion.
//!
//! Mirrors the criterion 0.5 API surface the workspace's benches use —
//! [`Criterion::benchmark_group`], `bench_with_input`/`bench_function`,
//! [`BenchmarkId`], the `criterion_group!`/`criterion_main!` macros — but
//! replaces the statistical engine with a single wall-clock sample per
//! benchmark point. In test mode (`cargo test` passes `--test` to
//! `harness = false` bench targets) each point runs its closure exactly
//! once, keeping tier-1 runs fast; `cargo bench` (which passes `--bench`)
//! takes three samples and reports the best.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How many timing samples to take per benchmark point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// One run per point — used under `cargo test`.
    Smoke,
    /// A few runs per point, best-of reported — used under `cargo bench`.
    Measure,
}

/// Top-level benchmark driver.
pub struct Criterion {
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes harness = false bench targets with `--bench` from
        // `cargo bench` and `--test` from `cargo test`.
        let measure = std::env::args().any(|a| a == "--bench");
        Self {
            mode: if measure { Mode::Measure } else { Mode::Smoke },
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmark points.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            mode: self.mode,
            _criterion: std::marker::PhantomData,
        }
    }

    /// Runs a single free-standing benchmark point.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_point(self.mode, &id.label, &mut f);
        self
    }
}

/// A named group of benchmark points sharing timing settings.
///
/// The timing-budget setters (`warm_up_time`, `measurement_time`,
/// `sample_size`) are accepted and ignored: the shim always takes a fixed
/// small number of samples.
pub struct BenchmarkGroup<'a> {
    name: String,
    mode: Mode,
    _criterion: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim has no warm-up phase.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim's sample count is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim's sample count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Times `f` for one parameterised point of the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        run_point(self.mode, &label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Times `f` for one unparameterised point of the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        run_point(self.mode, &label, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark point, optionally `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `function/parameter` id.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id carrying only the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// Passed to the benchmark closure; times the routine under test.
pub struct Bencher {
    elapsed: Option<Duration>,
}

impl Bencher {
    /// Times one execution of `f` (criterion would time many).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed = Some(start.elapsed());
    }
}

fn run_point(mode: Mode, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let samples = match mode {
        Mode::Smoke => 1,
        Mode::Measure => 3,
    };
    let mut best: Option<Duration> = None;
    for _ in 0..samples {
        let mut bencher = Bencher { elapsed: None };
        f(&mut bencher);
        if let Some(d) = bencher.elapsed {
            best = Some(best.map_or(d, |b| b.min(d)));
        }
    }
    match best {
        Some(d) => println!("bench {label:<50} {:>12.3?}", d),
        None => println!("bench {label:<50} (no iter call)"),
    }
}

/// Bundles benchmark functions under a group name, as criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_points_run_once_in_smoke_mode() {
        let mut c = Criterion { mode: Mode::Smoke };
        let mut runs = 0;
        {
            let mut g = c.benchmark_group("demo");
            g.warm_up_time(Duration::from_millis(1));
            g.measurement_time(Duration::from_millis(1));
            g.sample_size(10);
            g.bench_with_input(BenchmarkId::new("point", 4), &4u64, |b, &n| {
                b.iter(|| {
                    runs += 1;
                    n * 2
                })
            });
            g.finish();
        }
        assert_eq!(runs, 1);
    }

    #[test]
    fn bench_function_accepts_str_ids() {
        let mut c = Criterion { mode: Mode::Smoke };
        let mut hit = false;
        c.bench_function("plain", |b| b.iter(|| hit = true));
        let mut g = c.benchmark_group("grp");
        g.bench_function("inner", |b| b.iter(|| 1 + 1));
        g.finish();
        assert!(hit);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).label, "f/8");
        assert_eq!(BenchmarkId::from_parameter("p").label, "p");
    }
}
