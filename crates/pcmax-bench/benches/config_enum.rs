//! Microbenchmarks of the DP's inner loop: machine-configuration
//! enumeration with capacity pruning.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcmax_ptas::config::{all_configs, count_configs, for_each_config};
use std::hint::black_box;

struct Case {
    name: &'static str,
    bound: Vec<usize>,
    sizes: Vec<u64>,
    cap: u64,
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            name: "narrow_5d",
            bound: vec![2, 2, 2, 2, 2],
            sizes: vec![240, 300, 420, 540, 900],
            cap: 1019,
        },
        Case {
            name: "wide_9d",
            bound: vec![3, 2, 3, 2, 2, 2, 2, 3, 4],
            sizes: vec![240, 300, 360, 420, 480, 540, 660, 780, 960],
            cap: 1019,
        },
        Case {
            name: "deep_counts",
            bound: vec![15, 14, 17],
            sizes: vec![240, 600, 960],
            cap: 1019,
        },
    ]
}

fn bench_enumeration(c: &mut Criterion) {
    let mut g = c.benchmark_group("config_enum");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for case in cases() {
        let zeros = vec![0usize; case.bound.len()];
        g.bench_with_input(BenchmarkId::new("for_each", case.name), &case, |b, case| {
            b.iter(|| {
                let mut acc = 0u64;
                for_each_config(&case.bound, &case.sizes, &zeros, case.cap, &mut |_, w, _| {
                    acc = acc.wrapping_add(w);
                });
                black_box(acc)
            })
        });
        g.bench_with_input(BenchmarkId::new("count", case.name), &case, |b, case| {
            b.iter(|| black_box(count_configs(&case.bound, &case.sizes, case.cap)))
        });
        g.bench_with_input(BenchmarkId::new("collect", case.name), &case, |b, case| {
            b.iter(|| black_box(all_configs(&case.bound, &case.sizes, case.cap).len()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_enumeration);
criterion_main!(benches);
