//! Sharded multi-worker serving for `P||Cmax`.
//!
//! A [`Coordinator`] fronts N `pcmax-serve` workers over the existing
//! TCP line protocol and gives the fleet three properties a single
//! worker cannot:
//!
//! * **Cache-affinity routing** — requests are canonicalised to a
//!   [`RouteKey`] (sorted, gcd-normalised times + `k = ⌈1/ε⌉`, mirroring
//!   the DP cache key one level up) and sharded by rendezvous hashing,
//!   so equivalent instances always land on the same worker and hit its
//!   warm DP cache. See [`ring`].
//! * **Health-checked lifecycle** — workers join and leave at runtime;
//!   a background heartbeat polls the `health` verb and marks a worker
//!   down after `max_missed_beats` consecutive misses, up again on any
//!   success. Rendezvous hashing makes membership changes minimally
//!   disruptive: only the affected worker's keys remap.
//! * **Failover, never an error** — each request walks the degradation
//!   ladder *route → bounded retry (backoff + jitter) → failover to the
//!   next ring node → local LPT/MULTIFIT*. The bottom rung is an
//!   in-process heuristic, so a solvable instance always returns a valid
//!   schedule; transport problems are absorbed, not surfaced.
//!
//! * **Warm-state replication & elasticity** — the warmsync engine
//!   ([`sync`]) rides the heartbeat: each worker's warm-log suffix is
//!   shipped to its `R − 1` rendezvous successors, membership changes
//!   trigger a planned rebalance (the exact rendezvous ownership diff,
//!   pulled from a live holder and pushed to the new owner), and an
//!   optional [`ElasticPolicy`] spawns/retires workers through a
//!   registered [`Lifecycle`]. A joining worker therefore answers its
//!   first request for a previously-warm key from shipped state — no
//!   cold DP solve.
//!
//! [`serve_cluster_tcp`] exposes the coordinator over the same line
//! protocol the workers speak (`stats` answers with the aggregated
//! [`ClusterReport`]), making a cluster a drop-in replacement for a
//! single `pcmax serve`. [`LocalCluster`] spins the whole topology up
//! in one process for tests and benchmarks.

pub mod coordinator;
pub mod front;
pub mod harness;
pub mod ring;
pub mod stats;
pub mod sync;
pub mod worker;

pub use coordinator::{ClusterConfig, ClusterError, ClusterReply, Coordinator};
pub use front::{serve_cluster_tcp, ClusterTcpHandle};
pub use harness::LocalCluster;
pub use ring::{rank_ids, rendezvous_score, worker_seed, RouteKey};
pub use stats::{ClusterReport, ClusterStats, WorkerReport};
pub use sync::{ElasticPolicy, Lifecycle, SyncOutcome};
pub use worker::{WorkerCounters, WorkerNode, WorkerState};
