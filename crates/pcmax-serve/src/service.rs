//! The in-process solver service: bounded admission queue, worker pool,
//! `(ε, k)`-bucketed batching, and deadline-aware degradation.
//!
//! Life of a request: [`Service::submit`] stamps it with its deadline and
//! tries to enqueue (full queue ⇒ immediate [`ServeError::Overloaded`] —
//! the service sheds load at the door rather than letting latency grow
//! unbounded). A worker drains a batch, groups it by the rounding
//! parameter `k` so consecutive solves share cache keys, and answers each
//! request through the [`crate::portfolio`] — a feature-driven pick over
//! exact / DP / heuristic arms that may *race* two arms when the cost
//! prediction is marginal. A request whose deadline expires (or whose DP
//! table would blow the cell budget) is *not* an error: it degrades to
//! the heuristic safety net and the response says so, carrying the
//! [`pcmax_core::Guarantee`] of the arm that actually answered.

use crate::portfolio::{solve_portfolio, PortfolioCounters, PortfolioPolicy, MULTIFIT_ITERS};
use crate::solver::{DpCache, ReprPolicy, SolverOptions};
use crate::stats::{
    EngineUsed, HealthReply, ImproveReport, ReprReport, RequestStats, ServeMetrics, ServiceReport,
    StoreReport,
};
use crate::warm::WarmTier;
use pcmax_core::heuristics::{lpt_revisited, multifit_with_guarantee};
use pcmax_core::{Guarantee, Instance, Schedule};
use pcmax_improve::{ImproveConfig, ImproveMode};
use pcmax_ptas::DpEngine;
use pcmax_store::StoreBudget;
use pcmax_warmsync::{counters as wsc, ReplicaBudget, ShipEntry, WarmDigest};
use rayon::prelude::*;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables for [`Service::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads. `0` is allowed: requests queue but are never
    /// drained — useful for deterministic overload tests.
    pub workers: usize,
    /// Admission-queue capacity; submits beyond it are rejected.
    pub queue_capacity: usize,
    /// Most requests a worker drains in one batch.
    pub batch_max: usize,
    /// Deadline applied to requests that don't carry their own.
    pub default_deadline: Duration,
    /// ε applied to requests that don't carry their own.
    pub default_epsilon: f64,
    /// DP engine for cache misses.
    pub engine: DpEngine,
    /// Shards of the DP cache.
    pub cache_shards: usize,
    /// Byte budget of the DP cache, split evenly across the shards.
    pub mem_budget: StoreBudget,
    /// Directory for the persistent warm-start log. `None` runs
    /// RAM-only: nothing is persisted and restarts start cold.
    pub store_dir: Option<PathBuf>,
    /// Largest DP table (in cells) a probe may allocate before the
    /// request degrades to a heuristic.
    pub max_table_cells: usize,
    /// Which DP representations probes may use. Under [`ReprPolicy::Auto`]
    /// each probe is predicted into dense, sparse, or (when a store
    /// directory exists) paged before anything is allocated.
    pub repr: ReprPolicy,
    /// RAM budget of each paged solve's tiered store (only used when a
    /// store directory enables the paged arm).
    pub pages_budget: StoreBudget,
    /// Read/write timeout applied to every TCP stream the front-end
    /// accepts, so a hung peer can never wedge a connection thread.
    /// `None` disables the timeout (streams block forever, the
    /// pre-cluster behaviour).
    pub io_timeout: Option<Duration>,
    /// How the per-request solver arm is picked: feature-driven
    /// [`PortfolioPolicy::Auto`] (the default), one pinned arm, or an
    /// explicit two-arm race.
    pub portfolio: PortfolioPolicy,
    /// Anytime improver applied after the solve: off (default), greedy
    /// move/swap descent, or descent + island GA. The improver spends
    /// the *remaining* request deadline (capped by `improve_budget`)
    /// and never returns a worse schedule than the arm's answer.
    pub improve: ImproveMode,
    /// Per-request ceiling on improver wall clock. The effective budget
    /// is `min(improve_budget, deadline − now)` at the moment the solve
    /// finishes — a request with no deadline headroom skips improvement.
    pub improve_budget: Duration,
    /// Byte budget for warm entries this worker stores *on behalf of
    /// the ring* (warmsync replication). Oldest replicas are evicted
    /// first once exceeded. Entries this worker computed itself are
    /// never charged.
    pub replica_budget: StoreBudget,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 256,
            batch_max: 32,
            default_deadline: Duration::from_secs(2),
            default_epsilon: 0.3,
            engine: DpEngine::AntiDiagonal,
            cache_shards: 8,
            mem_budget: StoreBudget::default(),
            store_dir: None,
            max_table_cells: 10_000_000,
            repr: ReprPolicy::Auto,
            pages_budget: StoreBudget::default(),
            io_timeout: Some(Duration::from_secs(30)),
            portfolio: PortfolioPolicy::Auto,
            improve: ImproveMode::Off,
            improve_budget: Duration::from_millis(2),
            replica_budget: StoreBudget::bytes(16 << 20),
        }
    }
}

/// A solve request as the service accepts it.
#[derive(Debug, Clone)]
pub struct SolveRequest {
    /// The instance to schedule.
    pub instance: Instance,
    /// Relative error ε in `(0, 1]`; `None` uses the config default.
    pub epsilon: Option<f64>,
    /// Time budget from admission; `None` uses the config default.
    pub deadline: Option<Duration>,
}

/// A solved (possibly degraded) request.
#[derive(Debug, Clone)]
pub struct SolveResponse {
    /// Valid schedule of all jobs.
    pub schedule: Schedule,
    /// Its makespan.
    pub makespan: u64,
    /// Converged target `T*` (PTAS answers only).
    pub target: Option<u64>,
    /// Machines the DP used for long jobs (PTAS answers only).
    pub machines_used: Option<usize>,
    /// Whether the answer was degraded to a heuristic.
    pub degraded: bool,
    /// Per-request cost breakdown.
    pub stats: RequestStats,
}

/// Why the service refused or dropped a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The admission queue was full.
    Overloaded,
    /// The service is shutting down (or did so before answering).
    ShuttingDown,
    /// The request was malformed (bad ε, empty instance, …).
    Invalid(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded => f.write_str("queue full, request rejected"),
            ServeError::ShuttingDown => f.write_str("service shutting down"),
            ServeError::Invalid(why) => write!(f, "invalid request: {why}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// One admitted request, queued for a worker.
struct QueuedJob {
    instance: Instance,
    k: u64,
    enqueued: Instant,
    deadline: Instant,
    reply: mpsc::SyncSender<SolveResponse>,
}

/// Bounded MPMC queue: `Mutex<VecDeque>` + `Condvar`, with batch draining.
struct Queue {
    inner: Mutex<QueueInner>,
    ready: Condvar,
}

struct QueueInner {
    jobs: VecDeque<QueuedJob>,
    capacity: usize,
    closed: bool,
}

impl Queue {
    fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(QueueInner {
                jobs: VecDeque::new(),
                capacity,
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Admission control: rejects instead of blocking when full.
    fn try_push(&self, job: QueuedJob) -> Result<(), ServeError> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.closed {
            return Err(ServeError::ShuttingDown);
        }
        if inner.jobs.len() >= inner.capacity {
            return Err(ServeError::Overloaded);
        }
        inner.jobs.push_back(job);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until at least one job is available (or the queue closes),
    /// then drains up to `max` jobs. `None` means closed *and* drained.
    fn pop_batch(&self, max: usize) -> Option<Vec<QueuedJob>> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if !inner.jobs.is_empty() {
                let take = inner.jobs.len().min(max);
                return Some(inner.jobs.drain(..take).collect());
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).expect("queue poisoned");
        }
    }

    /// Jobs currently queued (admitted but not yet picked up).
    fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").jobs.len()
    }

    /// Closes the queue and drops every still-queued job. Dropping a job
    /// drops its reply sender, which fails the submitter's
    /// `PendingSolve::recv` with `ShuttingDown` instead of hanging it.
    fn close(&self) {
        let dropped: Vec<QueuedJob> = {
            let mut inner = self.inner.lock().expect("queue poisoned");
            inner.closed = true;
            inner.jobs.drain(..).collect()
        };
        drop(dropped);
        self.ready.notify_all();
    }
}

/// A pending answer returned by [`Service::submit`].
#[derive(Debug)]
pub struct PendingSolve {
    rx: mpsc::Receiver<SolveResponse>,
}

impl PendingSolve {
    /// Blocks until the worker answers. [`ServeError::ShuttingDown`] if
    /// the service stopped before this request was solved.
    pub fn recv(self) -> Result<SolveResponse, ServeError> {
        self.rx.recv().map_err(|_| ServeError::ShuttingDown)
    }
}

/// Shared service counters.
#[derive(Default)]
struct Counters {
    accepted: AtomicU64,
    completed: AtomicU64,
    degraded: AtomicU64,
    rejected: AtomicU64,
    repr_dense: AtomicU64,
    repr_sparse: AtomicU64,
    repr_paged: AtomicU64,
    improve_runs: AtomicU64,
    improve_wins: AtomicU64,
}

/// Everything a worker thread needs. Workers deliberately do NOT hold
/// the [`Service`] itself: they own only these leaf Arcs, so dropping
/// the last user handle to the service runs its `Drop`, closes the
/// queue, and lets the workers exit — no reference cycle.
#[derive(Clone)]
struct WorkerCtx {
    queue: Arc<Queue>,
    cache: Arc<DpCache>,
    warm: Option<Arc<WarmTier>>,
    counters: Arc<Counters>,
    metrics: Arc<ServeMetrics>,
    arms: Arc<PortfolioCounters>,
    solver: SolverOptions,
    portfolio: PortfolioPolicy,
    batch_max: usize,
    improve: ImproveMode,
    improve_budget: Duration,
}

/// The solver service. Create with [`Service::start`]; share via `Arc`.
pub struct Service {
    config: ServeConfig,
    queue: Arc<Queue>,
    cache: Arc<DpCache>,
    warm: Option<Arc<WarmTier>>,
    counters: Arc<Counters>,
    metrics: Arc<ServeMetrics>,
    arms: Arc<PortfolioCounters>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    started: Instant,
    /// Byte accounting for warm entries held on behalf of the ring.
    replica_budget: Mutex<ReplicaBudget>,
    replica_evictions: AtomicU64,
}

impl Service {
    /// Validates the config, spins up the worker pool, and returns the
    /// running service.
    pub fn start(config: ServeConfig) -> Arc<Self> {
        assert!(
            config.default_epsilon > 0.0 && config.default_epsilon <= 1.0,
            "default_epsilon must be in (0, 1]"
        );
        assert!(config.queue_capacity > 0, "queue_capacity must be positive");
        assert!(config.batch_max > 0, "batch_max must be positive");
        let queue = Arc::new(Queue::new(config.queue_capacity));
        let shards = config.cache_shards.max(1);
        let budget_per_shard = (config.mem_budget.bytes / shards as u64).max(1);
        let cache = Arc::new(DpCache::new(shards, budget_per_shard));
        // A store dir that cannot be opened is a deployment error, not a
        // per-request condition: fail loudly at startup.
        let warm = config.store_dir.as_ref().map(|dir| {
            Arc::new(
                WarmTier::open(dir.join("warm"))
                    .unwrap_or_else(|e| panic!("cannot open warm store at {}: {e}", dir.display())),
            )
        });
        let counters = Arc::new(Counters::default());
        let metrics = Arc::new(ServeMetrics::default());
        let arms = Arc::new(PortfolioCounters::default());
        // The paged arm spills per-solve scratch pages next to the warm
        // log; without a store directory the Auto ladder ends at sparse.
        let solver = SolverOptions {
            engine: config.engine,
            repr: config.repr,
            max_table_cells: config.max_table_cells,
            pages_dir: config.store_dir.as_ref().map(|dir| dir.join("pages")),
            pages_budget: config.pages_budget,
        };
        let ctx = WorkerCtx {
            queue: Arc::clone(&queue),
            cache: Arc::clone(&cache),
            warm: warm.clone(),
            counters: Arc::clone(&counters),
            metrics: Arc::clone(&metrics),
            arms: Arc::clone(&arms),
            solver,
            portfolio: config.portfolio,
            batch_max: config.batch_max,
            improve: config.improve,
            improve_budget: config.improve_budget,
        };
        let handles: Vec<JoinHandle<()>> = (0..config.workers)
            .map(|i| {
                let ctx = ctx.clone();
                std::thread::Builder::new()
                    .name(format!("pcmax-serve-worker-{i}"))
                    .spawn(move || ctx.worker_loop())
                    .expect("spawn worker")
            })
            .collect();
        let replica_budget = Mutex::new(ReplicaBudget::new(config.replica_budget.bytes));
        Arc::new(Self {
            config,
            queue,
            cache,
            warm,
            counters,
            metrics,
            arms,
            workers: Mutex::new(handles),
            started: Instant::now(),
            replica_budget,
            replica_evictions: AtomicU64::new(0),
        })
    }

    /// Validates and enqueues a request; returns a handle to await.
    pub fn submit(&self, req: SolveRequest) -> Result<PendingSolve, ServeError> {
        let eps = req.epsilon.unwrap_or(self.config.default_epsilon);
        if !(eps > 0.0 && eps <= 1.0) {
            return Err(ServeError::Invalid(format!(
                "epsilon {eps} outside (0, 1]"
            )));
        }
        let k = (1.0 / eps).ceil() as u64;
        let now = Instant::now();
        let deadline = now + req.deadline.unwrap_or(self.config.default_deadline);
        // Rendezvous of capacity 1: the worker's send never blocks even
        // if the submitter gave up waiting.
        let (tx, rx) = mpsc::sync_channel(1);
        let job = QueuedJob {
            instance: req.instance,
            k,
            enqueued: now,
            deadline,
            reply: tx,
        };
        match self.queue.try_push(job) {
            Ok(()) => {
                self.counters.accepted.fetch_add(1, Ordering::Relaxed);
                Ok(PendingSolve { rx })
            }
            Err(e) => {
                if e == ServeError::Overloaded {
                    self.counters.rejected.fetch_add(1, Ordering::Relaxed);
                }
                Err(e)
            }
        }
    }

    /// Submit + await in one call.
    pub fn solve_blocking(&self, req: SolveRequest) -> Result<SolveResponse, ServeError> {
        self.submit(req)?.recv()
    }

    /// Counter and histogram snapshot (including the cache's and the
    /// memory tiers').
    pub fn report(&self) -> ServiceReport {
        ServiceReport {
            accepted: self.counters.accepted.load(Ordering::Relaxed),
            completed: self.counters.completed.load(Ordering::Relaxed),
            degraded: self.counters.degraded.load(Ordering::Relaxed),
            rejected: self.counters.rejected.load(Ordering::Relaxed),
            repr: ReprReport {
                dense_probes: self.counters.repr_dense.load(Ordering::Relaxed),
                sparse_probes: self.counters.repr_sparse.load(Ordering::Relaxed),
                paged_probes: self.counters.repr_paged.load(Ordering::Relaxed),
            },
            improve: ImproveReport {
                runs: self.counters.improve_runs.load(Ordering::Relaxed),
                improved: self.counters.improve_wins.load(Ordering::Relaxed),
            },
            portfolio: self.arms.report(),
            cache: self.cache.report(),
            store: self.store_report(),
            histograms: self.metrics.snapshot(),
        }
    }

    /// Snapshot of the memory tiers: RAM cache vs. budget plus warm
    /// disk-tier counters.
    pub fn store_report(&self) -> StoreReport {
        // Paged-engine overlap counters live on the global obs registry:
        // the tiered stores backing paged probes are per-solve scratch
        // stores, so the process-wide counters are the only aggregate
        // that survives them.
        let reg = pcmax_obs::registry::global();
        StoreReport {
            budget_bytes: self.cache.budget_bytes(),
            cache_bytes: self.cache.bytes(),
            pressure_pct: self.pressure_pct(),
            warm_entries: self.warm.as_ref().map_or(0, |w| w.entries()),
            rehydrated: self.warm.as_ref().map_or(0, |w| w.rehydrated()),
            disk_hits: self.warm.as_ref().map_or(0, |w| w.hits()),
            appends: self.warm.as_ref().map_or(0, |w| w.appends()),
            warm_seq: self.warm.as_ref().map_or(0, |w| w.max_seq()),
            compactions: self.warm.as_ref().map_or(0, |w| w.compactions()),
            warmsync_applied: self.warm.as_ref().map_or(0, |w| w.entries_applied()),
            cold_misses_avoided: self.warm.as_ref().map_or(0, |w| w.cold_misses_avoided()),
            replica_bytes: self.replica_budget.lock().expect("replica lock").used(),
            replica_evictions: self.replica_evictions.load(Ordering::Relaxed),
            fault_us: self
                .warm
                .as_ref()
                .map_or_else(Default::default, |w| w.fault_latency()),
            paged_faults: reg.counter("store.faults").get(),
            prefetch_issued: reg.counter("store.prefetch_issued").get(),
            prefetch_hits: reg.counter("store.prefetch_hits").get(),
            writebehind_writes: reg.counter("store.writebehind_writes").get(),
            overlap_us: reg.histogram("store.overlap_us").snapshot(),
        }
    }

    /// DP-cache residency as a percentage of its byte budget, clamped
    /// to 100.
    pub fn pressure_pct(&self) -> u64 {
        let budget = self.cache.budget_bytes().max(1);
        (self.cache.bytes().saturating_mul(100) / budget).min(100)
    }

    /// The shared DP cache (exposed for tests and diagnostics).
    pub fn cache(&self) -> &DpCache {
        &self.cache
    }

    /// The warm disk tier, when the service was started with a store
    /// directory.
    pub fn warm(&self) -> Option<&WarmTier> {
        self.warm.as_deref()
    }

    /// The configuration the service was started with.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Jobs currently admitted but not yet picked up by a worker.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Time since [`Service::start`].
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// Liveness snapshot — the payload of the protocol's `health` verb
    /// (and of the cluster coordinator's heartbeat).
    pub fn health(&self) -> HealthReply {
        HealthReply {
            uptime_us: self.uptime().as_micros() as u64,
            queue_depth: self.queue_depth() as u64,
            cache_entries: self.cache.len() as u64,
            pressure_pct: self.pressure_pct(),
            warm_entries: self.warm.as_ref().map_or(0, |w| w.entries()),
            warm_seq: self.warm.as_ref().map_or(0, |w| w.max_seq()),
        }
    }

    /// The warm log's `(key hash, seq)` inventory — the `warm-digest`
    /// reply. Empty without a store directory.
    pub fn warm_digest(&self) -> WarmDigest {
        match self.warm.as_ref() {
            None => WarmDigest::default(),
            Some(w) => WarmDigest {
                max_seq: w.max_seq(),
                entries: w.digest(),
            },
        }
    }

    /// Warm entries with seq > `since_seq` and key hash in `lo..=hi` —
    /// the `warm-pull` reply body. Empty without a store directory.
    pub fn warm_pull(&self, since_seq: u64, lo: u64, hi: u64) -> Vec<ShipEntry> {
        self.warm
            .as_ref()
            .map_or_else(Vec::new, |w| w.entries_since(since_seq, lo, hi))
    }

    /// Applies pushed warm entries: each token is decoded (checksum
    /// re-verified), appended to the warm log, and charged to the
    /// replica byte budget; the budget's oldest-first evictions are
    /// carried out immediately. Returns `(accepted, rejected)`. A
    /// worker without a store directory rejects everything — it has
    /// nowhere durable to put replicas.
    pub fn warm_apply(&self, tokens: &[String]) -> (u64, u64) {
        let Some(warm) = self.warm.as_ref() else {
            return (0, tokens.len() as u64);
        };
        let mut accepted = 0u64;
        let mut rejected = 0u64;
        for token in tokens {
            let entry = match ShipEntry::from_token(token) {
                Ok(entry) => entry,
                Err(_) => {
                    rejected += 1;
                    wsc::add(wsc::ENTRIES_REJECTED, 1);
                    continue;
                }
            };
            if !warm.apply(&entry) {
                rejected += 1;
                wsc::add(wsc::ENTRIES_REJECTED, 1);
                continue;
            }
            accepted += 1;
            let bytes = (entry.key.len() + entry.value.len()) as u64;
            let evicted = self
                .replica_budget
                .lock()
                .expect("replica lock")
                .charge(&entry.key, bytes);
            for key in evicted {
                warm.evict_raw(&key);
                self.replica_evictions.fetch_add(1, Ordering::Relaxed);
                wsc::add(wsc::REPLICA_EVICTIONS, 1);
            }
        }
        (accepted, rejected)
    }

    /// Closes the queue and joins the workers. Queued-but-unsolved
    /// requests see [`ServeError::ShuttingDown`] on their handles.
    /// Idempotent; also invoked on drop.
    pub fn shutdown(&self) {
        self.queue.close();
        let handles = std::mem::take(&mut *self.workers.lock().expect("workers poisoned"));
        for h in handles {
            let _ = h.join();
        }
    }

}

impl WorkerCtx {
    fn worker_loop(&self) {
        while let Some(batch) = self.queue.pop_batch(self.batch_max) {
            if pcmax_obs::enabled() {
                self.metrics.batch_size.record(batch.len() as u64);
            }
            // Bucket the batch by k: requests sharing a rounding
            // parameter also share DP cache keys, so solving them
            // back-to-back maximises hit locality. Buckets then run on
            // the rayon pool (each solve may itself be a parallel DP).
            let mut buckets: BTreeMap<u64, Vec<QueuedJob>> = BTreeMap::new();
            for job in batch {
                buckets.entry(job.k).or_default().push(job);
            }
            let groups: Vec<Vec<QueuedJob>> = buckets.into_values().collect();
            groups.into_par_iter().for_each(|group| {
                for job in group {
                    self.solve_one(job);
                }
            });
        }
    }

    fn solve_one(&self, job: QueuedJob) {
        let picked_up = Instant::now();
        let queue_wait_us = picked_up.duration_since(job.enqueued).as_micros() as u64;
        let solve_started = Instant::now();
        let out = solve_portfolio(
            &job.instance,
            job.k,
            &self.solver,
            &self.cache,
            self.warm.as_deref(),
            Some(job.deadline),
            self.portfolio,
            &self.arms,
        );
        self.counters
            .repr_dense
            .fetch_add(out.repr.dense, Ordering::Relaxed);
        self.counters
            .repr_sparse
            .fetch_add(out.repr.sparse, Ordering::Relaxed);
        self.counters
            .repr_paged
            .fetch_add(out.repr.paged, Ordering::Relaxed);
        if out.degraded {
            self.counters.degraded.fetch_add(1, Ordering::Relaxed);
        }
        let solve_us = solve_started.elapsed().as_micros() as u64;

        // Anytime improvement: spend whatever deadline budget the solve
        // left over refining the arm's schedule. Boundary-checked both
        // ways — the improver validates its input and recomputes its
        // output makespan — and strictly monotone, so the reply is
        // never worse than the arm's answer.
        let lb = pcmax_core::lower_bound(&job.instance);
        let mut schedule = out.schedule;
        let mut makespan = out.makespan;
        let mut guarantee = out.guarantee;
        let mut improve_us = 0u64;
        if self.improve != ImproveMode::Off {
            let headroom = job.deadline.saturating_duration_since(Instant::now());
            let budget = headroom.min(self.improve_budget);
            if !budget.is_zero() {
                let cfg = ImproveConfig {
                    mode: self.improve,
                    budget,
                    ..ImproveConfig::default()
                };
                if let Ok(refined) = pcmax_improve::improve(&job.instance, &schedule, &cfg) {
                    self.counters.improve_runs.fetch_add(1, Ordering::Relaxed);
                    improve_us = refined.stats.budget_used_us;
                    if refined.makespan < makespan {
                        self.counters.improve_wins.fetch_add(1, Ordering::Relaxed);
                        schedule = refined.schedule;
                        makespan = refined.makespan;
                    }
                    // The improver ran, so the instance-specific ratio
                    // against the lower bound is worth certifying — it
                    // is sound for *this* schedule and often tighter
                    // than the arm's worst-case theorem.
                    guarantee = guarantee.tighter(Guarantee::a_posteriori(makespan, lb));
                }
            }
        }
        let gap_ppm = Guarantee::gap_ppm(makespan, lb);

        let response = SolveResponse {
            schedule,
            makespan,
            target: out.target,
            machines_used: out.machines_used,
            degraded: out.degraded,
            stats: RequestStats {
                queue_wait_us,
                solve_us,
                cache_hits: out.cache_hits,
                cache_misses: out.cache_misses,
                degraded: out.degraded,
                engine: out.engine,
                guarantee,
                gap_ppm,
                improve_us,
            },
        };
        self.counters.completed.fetch_add(1, Ordering::Relaxed);
        if pcmax_obs::enabled() {
            self.metrics.queue_wait_us.record(response.stats.queue_wait_us);
            self.metrics.solve_us.record(response.stats.solve_us);
            self.metrics.gap_ppm.record(gap_ppm);
            if improve_us > 0 {
                self.metrics.improve_us.record(improve_us);
            }
            if response.degraded {
                let lateness = Instant::now()
                    .saturating_duration_since(job.deadline)
                    .as_micros() as u64;
                self.metrics.degraded_lateness_us.record(lateness);
            }
        }
        // The submitter may have dropped its handle; that's fine.
        let _ = job.reply.try_send(response);
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The degradation answer: the better of LPT-revisited and MULTIFIT
/// (both are cheap enough for an already-late request), with the
/// certified guarantee of whichever arm won. Ties prefer LPT-revisited,
/// whose certificate is tighter. Used by the cluster coordinator's
/// local-fallback path; the service itself degrades through
/// [`crate::portfolio`]'s equivalent safety net.
pub fn heuristic_best(inst: &Instance) -> (Schedule, EngineUsed, Guarantee) {
    let rev = lpt_revisited(inst);
    let (by_multifit, multifit_guarantee) = multifit_with_guarantee(inst, MULTIFIT_ITERS);
    if by_multifit.makespan(inst) < rev.schedule.makespan(inst) {
        (by_multifit, EngineUsed::Multifit, multifit_guarantee)
    } else {
        (rev.schedule, EngineUsed::LptRev, rev.guarantee)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcmax_core::gen::uniform;

    fn request(seed: u64) -> SolveRequest {
        SolveRequest {
            instance: uniform(seed, 20, 3, 1, 40),
            epsilon: None,
            deadline: None,
        }
    }

    #[test]
    fn solves_and_validates() {
        let service = Service::start(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        });
        let res = service.solve_blocking(request(1)).unwrap();
        let inst = uniform(1, 20, 3, 1, 40);
        assert_eq!(res.schedule.validate(&inst).unwrap(), res.makespan);
        assert!(!res.degraded);
        assert_eq!(res.stats.engine, EngineUsed::Ptas);
        assert!(res.target.is_some());
        service.shutdown();
    }

    #[test]
    fn repeated_instances_hit_the_cache() {
        let service = Service::start(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        });
        let cold = service.solve_blocking(request(2)).unwrap();
        assert!(cold.stats.cache_misses > 0);
        let warm = service.solve_blocking(request(2)).unwrap();
        assert!(warm.stats.cache_hits > 0);
        assert_eq!(warm.stats.cache_misses, 0);
        assert_eq!(cold.makespan, warm.makespan);
        assert!(service.report().cache.hits > 0);
        service.shutdown();
    }

    #[test]
    fn zero_deadline_degrades_to_heuristic() {
        let service = Service::start(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        });
        let res = service
            .solve_blocking(SolveRequest {
                instance: uniform(3, 20, 3, 1, 40),
                epsilon: None,
                deadline: Some(Duration::ZERO),
            })
            .unwrap();
        assert!(res.degraded);
        assert!(res.target.is_none());
        assert!(matches!(
            res.stats.engine,
            EngineUsed::LptRev | EngineUsed::Multifit
        ));
        let inst = uniform(3, 20, 3, 1, 40);
        assert_eq!(res.schedule.validate(&inst).unwrap(), res.makespan);
        assert_eq!(service.report().degraded, 1);
        service.shutdown();
    }

    #[test]
    fn full_queue_rejects_with_overloaded() {
        // No workers: nothing drains, so the second submit must bounce.
        let service = Service::start(ServeConfig {
            workers: 0,
            queue_capacity: 1,
            ..ServeConfig::default()
        });
        let _pending = service.submit(request(4)).unwrap();
        let err = service.submit(request(5)).unwrap_err();
        assert_eq!(err, ServeError::Overloaded);
        assert_eq!(service.report().rejected, 1);
        service.shutdown();
    }

    #[test]
    fn shutdown_fails_pending_requests() {
        let service = Service::start(ServeConfig {
            workers: 0,
            ..ServeConfig::default()
        });
        let pending = service.submit(request(6)).unwrap();
        service.shutdown();
        assert_eq!(pending.recv().unwrap_err(), ServeError::ShuttingDown);
    }

    #[test]
    fn invalid_epsilon_is_rejected() {
        let service = Service::start(ServeConfig {
            workers: 0,
            ..ServeConfig::default()
        });
        let err = service
            .submit(SolveRequest {
                instance: uniform(7, 10, 2, 1, 20),
                epsilon: Some(1.5),
                deadline: None,
            })
            .unwrap_err();
        assert!(matches!(err, ServeError::Invalid(_)));
        service.shutdown();
    }

    #[test]
    fn restart_on_same_store_dir_warm_starts() {
        let dir = std::env::temp_dir().join(format!(
            "pcmax-service-restart-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let config = ServeConfig {
            workers: 1,
            store_dir: Some(dir.clone()),
            ..ServeConfig::default()
        };
        {
            let service = Service::start(config.clone());
            let cold = service.solve_blocking(request(8)).unwrap();
            assert!(cold.stats.cache_misses > 0);
            let store = service.store_report();
            assert!(store.appends > 0, "misses must be persisted");
            assert_eq!(store.rehydrated, 0);
            service.shutdown();
        }
        let service = Service::start(config);
        let report = service.store_report();
        assert!(report.rehydrated > 0, "restart must rehydrate the log");
        let rehydrated = service.solve_blocking(request(8)).unwrap();
        assert_eq!(
            rehydrated.stats.cache_misses, 0,
            "restarted worker must answer from disk, not recompute"
        );
        assert!(service.store_report().disk_hits > 0);
        service.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn improver_runs_and_never_worsens() {
        let base = ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        };
        let off = Service::start(base.clone());
        let plain = off.solve_blocking(request(9)).unwrap();
        assert_eq!(plain.stats.improve_us, 0);
        assert_eq!(off.report().improve.runs, 0);
        off.shutdown();

        let on = Service::start(ServeConfig {
            improve: ImproveMode::Greedy,
            improve_budget: Duration::from_millis(50),
            ..base
        });
        let refined = on.solve_blocking(request(9)).unwrap();
        let inst = uniform(9, 20, 3, 1, 40);
        assert_eq!(refined.schedule.validate(&inst).unwrap(), refined.makespan);
        assert!(refined.makespan <= plain.makespan, "improver must be monotone");
        assert!(refined.stats.gap_ppm <= plain.stats.gap_ppm);
        assert_eq!(on.report().improve.runs, 1);
        on.shutdown();
    }

    #[test]
    fn gap_ppm_reported_even_with_improver_off() {
        let service = Service::start(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        });
        let res = service.solve_blocking(request(10)).unwrap();
        let inst = uniform(10, 20, 3, 1, 40);
        assert_eq!(
            res.stats.gap_ppm,
            Guarantee::gap_ppm(res.makespan, pcmax_core::lower_bound(&inst))
        );
        service.shutdown();
    }

    #[test]
    fn concurrent_submitters_all_get_answers() {
        let service = Service::start(ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        });
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let svc = Arc::clone(&service);
                std::thread::spawn(move || {
                    // 4 distinct instances, each requested twice.
                    let res = svc.solve_blocking(request(i % 4)).unwrap();
                    let inst = uniform(i % 4, 20, 3, 1, 40);
                    assert_eq!(res.schedule.validate(&inst).unwrap(), res.makespan);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let report = service.report();
        assert_eq!(report.completed, 8);
        assert!(report.cache.hits > 0, "repeats must hit the cache");
        service.shutdown();
    }
}
