//! Bounded timeline event logs.
//!
//! A [`Timeline`] collects `(track, name, start, duration)` events — the
//! GPU simulator uses one track per stream so kernel launches can be laid
//! out on a time axis. The log is bounded: once `cap` events have been
//! recorded, further events are counted in `dropped` rather than stored,
//! so a long-running serve process cannot grow without limit.

use crate::json::JsonWriter;
use std::sync::Mutex;
use std::sync::OnceLock;

/// One interval on a named track.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TimelineEvent {
    /// Track the event belongs to (e.g. `gpu.stream0`).
    pub track: String,
    /// Event name (kernel name, phase name).
    pub name: String,
    /// Start offset in microseconds (simulated or wall, per producer).
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

struct Inner {
    events: Vec<TimelineEvent>,
    dropped: u64,
}

/// A bounded, thread-safe event log.
pub struct Timeline {
    inner: Mutex<Inner>,
    cap: usize,
}

impl Timeline {
    /// An empty timeline holding at most `cap` events.
    pub fn new(cap: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                events: Vec::new(),
                dropped: 0,
            }),
            cap,
        }
    }

    /// Appends an event, or counts it as dropped once the log is full.
    pub fn record(&self, event: TimelineEvent) {
        let mut inner = self.inner.lock().unwrap();
        if inner.events.len() < self.cap {
            inner.events.push(event);
        } else {
            inner.dropped += 1;
        }
    }

    /// Copies out the stored events.
    pub fn snapshot(&self) -> Vec<TimelineEvent> {
        self.inner.lock().unwrap().events.clone()
    }

    /// Events rejected because the log was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }

    /// Empties the log and resets the dropped count.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.events.clear();
        inner.dropped = 0;
    }

    /// Writes `{"events":[...],"dropped":n}` into `w`.
    pub fn write_json(&self, w: &mut JsonWriter) {
        let inner = self.inner.lock().unwrap();
        w.begin_object().key("events").begin_array();
        for e in &inner.events {
            w.begin_object()
                .field_str("track", &e.track)
                .field_str("name", &e.name)
                .field_u64("start_us", e.start_us)
                .field_u64("dur_us", e.dur_us)
                .end_object();
        }
        w.end_array().field_u64("dropped", inner.dropped).end_object();
    }

    /// The timeline as a standalone JSON string.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }
}

/// Capacity of the process-wide timeline: generous for traces and bench
/// runs, bounded for long-lived servers.
pub const GLOBAL_TIMELINE_CAP: usize = 65_536;

/// The process-wide timeline the GPU simulator records into.
pub fn global() -> &'static Timeline {
    static GLOBAL: OnceLock<Timeline> = OnceLock::new();
    GLOBAL.get_or_init(|| Timeline::new(GLOBAL_TIMELINE_CAP))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, start: u64) -> TimelineEvent {
        TimelineEvent {
            track: "t0".into(),
            name: name.into(),
            start_us: start,
            dur_us: 5,
        }
    }

    #[test]
    fn records_until_cap_then_drops() {
        let tl = Timeline::new(2);
        tl.record(ev("a", 0));
        tl.record(ev("b", 5));
        tl.record(ev("c", 10));
        assert_eq!(tl.snapshot().len(), 2);
        assert_eq!(tl.dropped(), 1);
        tl.clear();
        assert!(tl.snapshot().is_empty());
        assert_eq!(tl.dropped(), 0);
    }

    #[test]
    fn json_lists_events_and_dropped() {
        let tl = Timeline::new(8);
        tl.record(ev("k0", 3));
        let json = tl.to_json();
        assert_eq!(
            json,
            r#"{"events":[{"track":"t0","name":"k0","start_us":3,"dur_us":5}],"dropped":0}"#
        );
    }
}
