//! Plain-text table printing and CSV output for the harness binaries.

use std::fs;
use std::io::Write as _;
use std::path::Path;

/// Prints an aligned text table: a header row and data rows.
pub fn print_table(header: &[String], rows: &[Vec<String>]) {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "ragged row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut emit = |cells: &[String]| {
        let line: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        writeln!(out, "{}", line.join("  ")).expect("stdout");
    };
    emit(header);
    for row in rows {
        emit(row);
    }
}

/// Writes the same table as CSV under `results/<name>.csv`.
pub fn write_csv(name: &str, header: &[String], rows: &[Vec<String>]) -> std::io::Result<()> {
    let dir = Path::new("results");
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut out = fs::File::create(&path)?;
    writeln!(out, "{}", header.join(","))?;
    for row in rows {
        writeln!(out, "{}", row.join(","))?;
    }
    eprintln!("wrote {}", path.display());
    Ok(())
}

/// Milliseconds with adaptive precision.
pub fn ms(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

/// Renders a vector like the paper: `(3, 4, 3, 3, 4)`.
pub fn tuple(v: &[usize]) -> String {
    let inner: Vec<String> = v.iter().map(|x| x.to_string()).collect();
    format!("({})", inner.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ms_precision() {
        assert_eq!(ms(12345.6), "12346");
        assert_eq!(ms(3.71828), "3.72");
        assert_eq!(ms(0.001234), "0.0012");
    }

    #[test]
    fn tuple_format() {
        assert_eq!(tuple(&[3, 4, 3]), "(3,4,3)");
        assert_eq!(tuple(&[]), "()");
    }
}
