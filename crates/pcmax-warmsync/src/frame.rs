//! Wire representation of warm-log records and digests.
//!
//! The serve line protocol is single-line ASCII, so binary key/value
//! bytes travel hex-encoded. One shipped record is one token:
//!
//! ```text
//! <seq>:<hex key>:<hex value>:<fnv1a(key‖value)>
//! ```
//!
//! seq and checksum are decimal; key/value are lowercase hex (empty
//! value ⇒ empty hex field). Digest inventory entries are
//! `<key hash>:<seq>` tokens. Both token kinds are whitespace-free, so
//! a reply carries any number of them space-separated.

use crate::fnv1a;

/// A warm-log record in transit between workers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShipEntry {
    /// Sequence number the record held in the *source* worker's log.
    /// The receiver assigns its own local seq on apply; this one exists
    /// so a puller can advance its per-donor watermark.
    pub seq: u64,
    /// Opaque key bytes (a serialized canonical DP key).
    pub key: Vec<u8>,
    /// Opaque value bytes (a serialized cached solution).
    pub value: Vec<u8>,
}

impl ShipEntry {
    /// FNV-1a over `key‖value` — the transit checksum.
    pub fn checksum(&self) -> u64 {
        let mut body = Vec::with_capacity(self.key.len() + self.value.len());
        body.extend_from_slice(&self.key);
        body.extend_from_slice(&self.value);
        fnv1a(&body)
    }

    /// FNV-1a of the key bytes — the hash rendezvous routing and
    /// digests use for this entry.
    pub fn key_hash(&self) -> u64 {
        fnv1a(&self.key)
    }

    /// Encodes as a single whitespace-free protocol token.
    pub fn to_token(&self) -> String {
        format!(
            "{}:{}:{}:{}",
            self.seq,
            to_hex(&self.key),
            to_hex(&self.value),
            self.checksum()
        )
    }

    /// Parses a token, re-verifying the checksum against the decoded
    /// bytes. Any framing or checksum failure is an error string.
    pub fn from_token(token: &str) -> Result<Self, String> {
        let mut parts = token.split(':');
        let (Some(seq), Some(key), Some(value), Some(checksum), None) = (
            parts.next(),
            parts.next(),
            parts.next(),
            parts.next(),
            parts.next(),
        ) else {
            return Err(format!("malformed warm entry token: {token:?}"));
        };
        let seq: u64 = seq
            .parse()
            .map_err(|_| format!("bad warm entry seq: {seq:?}"))?;
        let key = from_hex(key).ok_or_else(|| format!("bad warm entry key hex: {key:?}"))?;
        let value =
            from_hex(value).ok_or_else(|| format!("bad warm entry value hex: {value:?}"))?;
        let checksum: u64 = checksum
            .parse()
            .map_err(|_| format!("bad warm entry checksum: {checksum:?}"))?;
        let entry = Self { seq, key, value };
        if entry.checksum() != checksum {
            return Err(format!(
                "warm entry checksum mismatch: got {}, token says {checksum}",
                entry.checksum()
            ));
        }
        Ok(entry)
    }
}

/// A worker's warm-log inventory: every live `(key hash, seq)` pair
/// plus the log's max seq, as returned by the `warm-digest` verb.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WarmDigest {
    /// Highest sequence number the log has assigned.
    pub max_seq: u64,
    /// `(fnv1a(key), seq)` for every live record.
    pub entries: Vec<(u64, u64)>,
}

impl WarmDigest {
    /// Whether the inventory lists `hash`.
    pub fn contains(&self, hash: u64) -> bool {
        self.entries.iter().any(|&(h, _)| h == hash)
    }
}

/// Formats one digest inventory entry as a `hash:seq` token.
pub fn format_digest_entry(hash: u64, seq: u64) -> String {
    format!("{hash}:{seq}")
}

/// Parses a `hash:seq` digest inventory token.
pub fn parse_digest_entry(token: &str) -> Result<(u64, u64), String> {
    let mut parts = token.split(':');
    let (Some(hash), Some(seq), None) = (parts.next(), parts.next(), parts.next()) else {
        return Err(format!("malformed digest token: {token:?}"));
    };
    let hash = hash
        .parse()
        .map_err(|_| format!("bad digest hash: {hash:?}"))?;
    let seq = seq.parse().map_err(|_| format!("bad digest seq: {seq:?}"))?;
    Ok((hash, seq))
}

fn to_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(char::from_digit((b >> 4) as u32, 16).expect("nibble"));
        out.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble"));
    }
    out
}

fn from_hex(text: &str) -> Option<Vec<u8>> {
    if text.len() % 2 != 0 {
        return None;
    }
    let digits = text.as_bytes();
    let mut out = Vec::with_capacity(digits.len() / 2);
    for pair in digits.chunks(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push(((hi << 4) | lo) as u8);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_tokens_round_trip() {
        let entry = ShipEntry {
            seq: 42,
            key: vec![0x00, 0xff, 0x10],
            value: b"solution bytes".to_vec(),
        };
        let token = entry.to_token();
        assert!(!token.contains(' '), "{token}");
        assert_eq!(ShipEntry::from_token(&token).unwrap(), entry);
    }

    #[test]
    fn empty_value_round_trips() {
        let entry = ShipEntry {
            seq: 1,
            key: b"k".to_vec(),
            value: Vec::new(),
        };
        assert_eq!(ShipEntry::from_token(&entry.to_token()).unwrap(), entry);
    }

    #[test]
    fn corrupted_tokens_are_rejected() {
        let entry = ShipEntry {
            seq: 7,
            key: b"key".to_vec(),
            value: b"val".to_vec(),
        };
        let token = entry.to_token();
        // Flip a value nibble: framing still parses, checksum must not.
        let tampered = token.replacen(&to_hex(b"val"), &to_hex(b"vbl"), 1);
        assert!(ShipEntry::from_token(&tampered)
            .unwrap_err()
            .contains("checksum mismatch"));
        assert!(ShipEntry::from_token("justonefield").is_err());
        assert!(ShipEntry::from_token("1:zz:aa:0").is_err());
        assert!(ShipEntry::from_token("1:abc:aa:0").is_err(), "odd hex");
        assert!(ShipEntry::from_token("1:aa:bb:0:extra").is_err());
    }

    #[test]
    fn digest_tokens_round_trip() {
        let token = format_digest_entry(12345678901234567890, 17);
        assert_eq!(
            parse_digest_entry(&token).unwrap(),
            (12345678901234567890, 17)
        );
        assert!(parse_digest_entry("no-colon").is_err());
        assert!(parse_digest_entry("1:2:3").is_err());
        assert!(parse_digest_entry("x:2").is_err());
    }

    #[test]
    fn checksum_matches_the_store_convention() {
        // FNV-1a of empty input is the offset basis — a sentinel that
        // both sides of the wire must agree on.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        let entry = ShipEntry {
            seq: 0,
            key: Vec::new(),
            value: Vec::new(),
        };
        assert_eq!(entry.checksum(), 0xcbf2_9ce4_8422_2325);
    }
}
