#![warn(missing_docs)]

//! Problem substrate for `P||Cmax`: scheduling `n` jobs with integer
//! processing times on `m` parallel identical machines to minimise the
//! makespan (the maximum machine load).
//!
//! This crate holds everything that is *about the problem* rather than
//! about the PTAS: instance representation and random generators
//! ([`Instance`], [`gen`]), schedules and their validation ([`Schedule`]),
//! the standard lower/upper bounds the PTAS bisects between ([`bounds`]),
//! classic polynomial heuristics used as baselines ([`heuristics`]), and
//! exact solvers small enough to act as test oracles ([`exact`]).

pub mod bounds;
pub mod exact;
pub mod gen;
pub mod guarantee;
pub mod heuristics;
pub mod io;
pub mod instance;
pub mod schedule;

pub use bounds::{lower_bound, upper_bound};
pub use guarantee::Guarantee;
pub use instance::{Instance, InstanceError};
pub use schedule::Schedule;
