//! Short/long job split and long-job rounding (Algorithm 1, lines 7–8).
//!
//! For a target makespan `T` and `k = ⌈1/ε⌉`:
//!
//! * a job is **long** iff `tⱼ > T/k` (equivalently `tⱼ·k > T`);
//! * long jobs are rounded **down** to the nearest multiple of
//!   `step = ⌊T/k²⌋` (clamped to ≥ 1 so tiny `T` stays well-defined);
//! * each distinct multiple `q·step` is a *class*; the class-count vector
//!   `N = (n₁, …, n_d)` is the DP input. We store only the classes that
//!   actually occur — the paper's "non-zero dimensions" — because extent-1
//!   dimensions add nothing to the DP.
//!
//! Rounding shrinks each long job by less than `step ≤ T/k² ≤ ε²·T`, and a
//! machine holds fewer than `k` long jobs (each exceeds `T/k`), so undoing
//! the rounding inflates a feasible machine load by at most `k·step ≤ T/k
//! ≤ ε·T` — the source of the `(1+ε)` guarantee.

use pcmax_core::Instance;
use serde::{Deserialize, Serialize};

/// A size class of rounded long jobs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Class {
    /// Rounded processing time (`q · step`).
    pub size: u64,
    /// The multiplier `q = size / step`.
    pub multiple: u64,
    /// Original job indices in this class.
    pub jobs: Vec<usize>,
}

/// Result of rounding an instance against a target makespan `T`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoundingOutcome {
    /// Some job is longer than `T`: no schedule with makespan ≤ `T` exists.
    Infeasible {
        /// The offending (longest) processing time.
        longest: u64,
    },
    /// The rounded instance.
    Rounded(Rounding),
}

/// The rounded view of an instance for one target `T`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rounding {
    /// Target makespan this rounding was computed for.
    pub target: u64,
    /// `k = ⌈1/ε⌉`.
    pub k: u64,
    /// Rounding granularity `max(1, ⌊T/k²⌋)`.
    pub step: u64,
    /// Size classes, ascending by size. Empty when there are no long jobs.
    pub classes: Vec<Class>,
    /// Indices of short jobs (`tⱼ·k ≤ T`).
    pub short_jobs: Vec<usize>,
}

impl Rounding {
    /// Rounds `inst` against target `T` with precision parameter `k`.
    pub fn compute(inst: &Instance, target: u64, k: u64) -> RoundingOutcome {
        assert!(k >= 1, "k must be at least 1");
        assert!(target >= 1, "target makespan must be positive");
        let longest = inst.max_time();
        if longest > target {
            return RoundingOutcome::Infeasible { longest };
        }
        // `k²` in u128: `k = ⌈1/ε⌉` is caller-controlled and wraps u64
        // for ε < 2⁻³². The quotient is ≤ target, so the cast back is
        // exact (step = 1 whenever k² exceeds the target).
        let step = ((target as u128 / (k as u128 * k as u128)) as u64).max(1);
        // Short iff `t·k ≤ T` ⟺ `t ≤ ⌊T/k⌋` (positive integers): the
        // division form cannot wrap, while `t·k` silently does for
        // times near u64::MAX — misclassifying the longest jobs as
        // *short*, which voids the (1+ε) guarantee without crashing.
        let short_cut = target / k;
        let mut short_jobs = Vec::new();
        // multiple → jobs, gathered then sorted for a canonical order.
        let mut by_multiple: std::collections::BTreeMap<u64, Vec<usize>> =
            std::collections::BTreeMap::new();
        for (j, &t) in inst.times().iter().enumerate() {
            if t <= short_cut {
                short_jobs.push(j);
            } else {
                by_multiple.entry(t / step).or_default().push(j);
            }
        }
        let classes = by_multiple
            .into_iter()
            .map(|(multiple, jobs)| Class {
                // `q·step ≤ t ≤ u64::MAX` because `q = ⌊t/step⌋`; widen
                // and convert loudly so the invariant is checked, not
                // assumed.
                size: u64::try_from(multiple as u128 * step as u128)
                    .expect("q·step ≤ t by construction"),
                multiple,
                jobs,
            })
            .collect();
        RoundingOutcome::Rounded(Self {
            target,
            k,
            step,
            classes,
            short_jobs,
        })
    }

    /// Number of size classes (the DP's non-zero dimensionality).
    #[inline]
    pub fn ndim(&self) -> usize {
        self.classes.len()
    }

    /// The class-count vector `N`.
    pub fn counts(&self) -> Vec<usize> {
        self.classes.iter().map(|c| c.jobs.len()).collect()
    }

    /// Rounded sizes per class, ascending.
    pub fn sizes(&self) -> Vec<u64> {
        self.classes.iter().map(|c| c.size).collect()
    }

    /// Total number of long jobs, `n′`.
    pub fn num_long(&self) -> usize {
        self.classes.iter().map(|c| c.jobs.len()).sum()
    }

    /// Size of the DP table this rounding induces, `σ = Π (nᵢ + 1)`,
    /// saturating at `usize::MAX`. The product can genuinely exceed
    /// `usize` for many-class roundings; saturation keeps the value a
    /// correct *lower bound*, which is what the serve layer's table
    /// budget check needs (a saturated σ is always over budget).
    pub fn table_size(&self) -> usize {
        self.classes
            .iter()
            .fold(1usize, |acc, c| acc.saturating_mul(c.jobs.len() + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rounded(inst: &Instance, target: u64, k: u64) -> Rounding {
        match Rounding::compute(inst, target, k) {
            RoundingOutcome::Rounded(r) => r,
            RoundingOutcome::Infeasible { .. } => panic!("unexpected infeasible"),
        }
    }

    #[test]
    fn infeasible_when_job_exceeds_target() {
        let inst = Instance::new(vec![10, 3], 2);
        match Rounding::compute(&inst, 9, 4) {
            RoundingOutcome::Infeasible { longest } => assert_eq!(longest, 10),
            _ => panic!("expected infeasible"),
        }
    }

    #[test]
    fn short_long_split_boundary() {
        // T=20, k=4: short iff t ≤ 5.
        let inst = Instance::new(vec![5, 6, 20, 1], 2);
        let r = rounded(&inst, 20, 4);
        assert_eq!(r.short_jobs, vec![0, 3]);
        assert_eq!(r.num_long(), 2);
    }

    #[test]
    fn step_is_floor_t_over_k_squared() {
        let inst = Instance::new(vec![100], 1);
        let r = rounded(&inst, 100, 4);
        assert_eq!(r.step, 6); // ⌊100/16⌋
    }

    #[test]
    fn step_clamped_to_one_for_tiny_targets() {
        let inst = Instance::new(vec![3], 1);
        let r = rounded(&inst, 3, 4);
        assert_eq!(r.step, 1);
    }

    #[test]
    fn rounding_is_down_and_within_step() {
        let inst = Instance::new(vec![97, 53, 53, 31], 2);
        let r = rounded(&inst, 100, 4);
        for class in &r.classes {
            for &j in &class.jobs {
                let t = inst.time(j);
                assert!(class.size <= t);
                assert!(t - class.size < r.step);
                assert_eq!(class.size % r.step, 0);
            }
        }
    }

    #[test]
    fn classes_ascending_and_counts_match() {
        let inst = Instance::new(vec![90, 90, 60, 60, 60, 30], 3);
        let r = rounded(&inst, 100, 4);
        let sizes = r.sizes();
        assert!(sizes.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(r.num_long(), 6); // all jobs > 25 are long
        assert_eq!(r.counts().iter().sum::<usize>(), 6);
    }

    #[test]
    fn equal_jobs_collapse_to_one_class() {
        let inst = Instance::new(vec![50; 10], 5);
        let r = rounded(&inst, 60, 4);
        assert_eq!(r.ndim(), 1);
        assert_eq!(r.counts(), vec![10]);
        assert_eq!(r.table_size(), 11);
    }

    #[test]
    fn no_long_jobs_gives_empty_classes() {
        let inst = Instance::new(vec![1, 2, 3], 2);
        let r = rounded(&inst, 100, 4);
        assert_eq!(r.ndim(), 0);
        assert_eq!(r.table_size(), 1);
        assert_eq!(r.short_jobs.len(), 3);
    }

    #[test]
    fn every_job_is_short_or_in_exactly_one_class() {
        let inst = Instance::new(vec![12, 47, 33, 8, 90, 90, 61, 5, 77, 41], 3);
        let r = rounded(&inst, 95, 4);
        let mut seen = vec![0u32; inst.num_jobs()];
        for &j in &r.short_jobs {
            seen[j] += 1;
        }
        for c in &r.classes {
            for &j in &c.jobs {
                seen[j] += 1;
            }
        }
        assert!(seen.iter().all(|&s| s == 1), "{seen:?}");
    }

    #[test]
    fn near_max_times_classified_long_not_short() {
        // Regression: the old `t * k <= target` wrapped for t near
        // u64::MAX (MAX·4 mod 2⁶⁴ = MAX − 3 ≤ target), silently filing
        // the *longest* job as short and voiding the (1+ε) guarantee.
        let inst = Instance::new(vec![u64::MAX], 1);
        let r = rounded(&inst, u64::MAX, 4);
        assert!(r.short_jobs.is_empty(), "u64::MAX job must be long");
        assert_eq!(r.num_long(), 1);
        let c = &r.classes[0];
        assert_eq!(c.multiple, c.size / r.step);
        assert!(c.size <= u64::MAX && c.size >= u64::MAX - r.step);
    }

    #[test]
    fn near_max_mixed_instance_splits_correctly() {
        let big = u64::MAX - 17;
        let inst = Instance::new(vec![big, 5, 9], 2);
        let t = big; // probe exactly at the longest job
        let r = rounded(&inst, t, 4);
        // short iff time ≤ ⌊T/4⌋; 5 and 9 are short, `big` is long.
        assert_eq!(r.short_jobs, vec![1, 2]);
        assert_eq!(r.num_long(), 1);
        for c in &r.classes {
            for &j in &c.jobs {
                assert!(c.size <= inst.time(j));
                assert!(inst.time(j) - c.size < r.step);
            }
        }
    }

    #[test]
    fn huge_k_clamps_step_to_one() {
        // k = 2³³ makes k² wrap u64 (old code: step computed from the
        // wrapped product). In u128 the quotient is 0 → step clamps to 1.
        let inst = Instance::new(vec![100], 1);
        let k = 1u64 << 33;
        let r = rounded(&inst, 100, k);
        assert_eq!(r.step, 1);
        // With step 1 a long job rounds to itself.
        assert_eq!(r.classes[0].size, 100);
    }

    #[test]
    fn table_size_saturates_instead_of_wrapping() {
        // 64 classes of 3 jobs each: σ = 4⁶⁴ ≫ usize::MAX.
        let classes: Vec<Class> = (0..64)
            .map(|i| Class {
                size: 1000 + i,
                multiple: 1000 + i,
                jobs: vec![0, 1, 2],
            })
            .collect();
        let r = Rounding {
            target: 10_000,
            k: 100,
            step: 1,
            classes,
            short_jobs: vec![],
        };
        assert_eq!(r.table_size(), usize::MAX);
    }

    #[test]
    fn class_multiples_at_least_k() {
        // A long job has t > T/k, so its multiple ⌊t/step⌋ ≥ k when
        // step = ⌊T/k²⌋ ≥ 1 divides cleanly; verify on a spread of inputs.
        let inst = Instance::new(vec![26, 30, 40, 50, 75, 100], 2);
        let r = rounded(&inst, 100, 4);
        for c in &r.classes {
            assert!(c.multiple >= 4, "multiple {} < k", c.multiple);
        }
    }
}
