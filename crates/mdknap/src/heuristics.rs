//! Greedy baselines for the multi-dimensional knapsack.
//!
//! These are what practitioners reach for before a DP: sort items by a
//! score and take greedily while they fit. Both are provided so the DP's
//! examples and benches can show where exact higher-dimensional DP earns
//! its cost (correlated instances, tight capacity boxes).

use crate::problem::KnapsackProblem;

/// Takes items greedily in the order produced by `score` (descending).
fn greedy_by<F: Fn(&crate::problem::Item) -> f64>(
    problem: &KnapsackProblem,
    score: F,
) -> (u64, Vec<usize>) {
    let mut order: Vec<usize> = (0..problem.num_items()).collect();
    order.sort_by(|&a, &b| {
        score(&problem.items()[b])
            .partial_cmp(&score(&problem.items()[a]))
            .expect("finite scores")
            .then(a.cmp(&b))
    });
    let mut used = vec![0usize; problem.ndim()];
    let mut profit = 0u64;
    let mut selection = Vec::new();
    for j in order {
        let item = &problem.items()[j];
        let fits = used
            .iter()
            .zip(&item.weights)
            .zip(problem.capacities())
            .all(|((&u, &w), &c)| u + w <= c);
        if fits {
            for (u, &w) in used.iter_mut().zip(&item.weights) {
                *u += w;
            }
            profit += item.profit;
            selection.push(j);
        }
    }
    selection.sort_unstable();
    (profit, selection)
}

/// Greedy by *density*: profit divided by total capacity fraction
/// consumed (the multi-dimensional generalisation of profit/weight).
pub fn greedy_by_density(problem: &KnapsackProblem) -> (u64, Vec<usize>) {
    let caps: Vec<f64> = problem
        .capacities()
        .iter()
        .map(|&c| (c.max(1)) as f64)
        .collect();
    greedy_by(problem, |item| {
        let frac: f64 = item
            .weights
            .iter()
            .zip(&caps)
            .map(|(&w, &c)| w as f64 / c)
            .sum();
        item.profit as f64 / frac.max(1e-12)
    })
}

/// Greedy by raw profit, ignoring weights.
pub fn greedy_by_profit(problem: &KnapsackProblem) -> (u64, Vec<usize>) {
    greedy_by(problem, |item| item.profit as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force;
    use crate::dp::{solve, KnapEngine};
    use crate::gen::{correlated, uncorrelated};
    use crate::problem::Item;

    #[test]
    fn greedy_selections_are_feasible_and_bounded_by_dp() {
        for seed in 0..6 {
            let p = uncorrelated(seed, 14, 2, 8);
            let opt = solve(&p, KnapEngine::InPlace).best;
            for (profit, sel) in [greedy_by_density(&p), greedy_by_profit(&p)] {
                assert_eq!(p.evaluate(&sel), Some(profit));
                assert!(profit <= opt, "greedy {profit} beats DP {opt}?");
            }
        }
    }

    #[test]
    fn density_beats_profit_on_the_classic_trap() {
        // One huge-profit item that hogs the knapsack vs many dense ones.
        let p = KnapsackProblem::new(
            vec![10],
            vec![
                Item { profit: 11, weights: vec![10] },
                Item { profit: 6, weights: vec![5] },
                Item { profit: 6, weights: vec![5] },
            ],
        );
        assert_eq!(greedy_by_profit(&p).0, 11);
        assert_eq!(greedy_by_density(&p).0, 12);
        assert_eq!(brute_force(&p).0, 12);
    }

    #[test]
    fn dp_strictly_beats_greedy_on_correlated_instances_sometimes() {
        // On correlated instances greedy leaves profit on the table for
        // at least one seed — the reason exact DP exists.
        let mut dp_wins = 0;
        for seed in 0..8 {
            let p = correlated(seed, 14, 2, 8);
            let opt = solve(&p, KnapEngine::InPlace).best;
            let (g, _) = greedy_by_density(&p);
            assert!(g <= opt);
            if opt > g {
                dp_wins += 1;
            }
        }
        assert!(dp_wins > 0, "greedy matched the DP on every seed");
    }

    #[test]
    fn zero_weight_items_always_taken() {
        let p = KnapsackProblem::new(
            vec![1],
            vec![
                Item { profit: 5, weights: vec![0] },
                Item { profit: 9, weights: vec![2] },
            ],
        );
        let (profit, sel) = greedy_by_density(&p);
        assert_eq!(profit, 5);
        assert_eq!(sel, vec![0]);
    }
}
