//! Cache-backed PTAS solving with deadline checks.
//!
//! The service's solve path re-implements the target bisection of
//! `pcmax_ptas::search` on top of the shared [`ShardedCache`]: every DP
//! probe first canonicalises its rounded problem to a
//! [`DpKey`] — `(class counts, gcd-normalised sizes, normalised
//! capacity)` — and consults the cache. Distinct instances (and distinct
//! targets of the *same* instance) frequently collapse to the same key,
//! so a warm service answers most probes without running the DP at all.
//!
//! Cached entries are machine-count independent: the DP computes
//! `OPT(N)`, the minimum number of machines, and feasibility for a
//! request is just `OPT(N) ≤ m` — so a solution cached for one `m` is
//! reusable verbatim for any other.

use crate::cache::ShardedCache;
use crate::warm::WarmTier;
use pcmax_core::{bounds, Instance, Schedule};
use pcmax_ptas::dp::INFEASIBLE;
use pcmax_ptas::ptas::assemble_schedule;
use pcmax_ptas::rounding::{Rounding, RoundingOutcome};
use pcmax_ptas::{DpEngine, DpKey, DpProblem};
use std::sync::Arc;
use std::time::Instant;

/// The DP cache the whole service shares.
pub type DpCache = ShardedCache<DpKey, CachedDp>;

/// A memoised DP outcome, keyed by [`DpKey`].
#[derive(Clone)]
pub struct CachedDp {
    /// `OPT(N)`: minimum machines for the rounded long jobs
    /// ([`INFEASIBLE`] when they cannot be packed at all).
    pub opt: u32,
    /// Machine configurations realising `opt` (absent when infeasible).
    /// `Arc`-shared: hits clone the pointer, not the table walk.
    pub configs: Option<Arc<Vec<Vec<usize>>>>,
}

/// Estimated resident bytes of one cache entry: key vectors (held twice,
/// in the index and the slab node), config vectors with their `Vec`
/// headers, plus fixed slab/index/`Arc` overhead. An estimate — the
/// cache budget bounds approximate memory, not allocator-exact bytes.
pub fn entry_cost(key: &DpKey, entry: &CachedDp) -> u64 {
    let key_bytes = (key.counts().len() + key.sizes().len()) as u64 * 8 + 8;
    let config_bytes = entry.configs.as_ref().map_or(0, |configs| {
        24 + configs
            .iter()
            .map(|c| 24 + 8 * c.len() as u64)
            .sum::<u64>()
    });
    96 + 2 * key_bytes + config_bytes
}

/// Why a request could not be answered by the PTAS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Degrade {
    /// The per-request deadline expired mid-search.
    DeadlineExceeded,
    /// A probe's DP table exceeded the configured cell budget.
    TableTooLarge {
        /// Cells the offending probe would have allocated.
        cells: usize,
    },
}

/// A completed cache-backed PTAS solve.
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// Valid schedule of all jobs.
    pub schedule: Schedule,
    /// Converged target `T*`.
    pub target: u64,
    /// Machines the DP used for the long jobs.
    pub machines_used: usize,
    /// Probes answered from the shared cache.
    pub cache_hits: u64,
    /// Probes that ran the DP.
    pub cache_misses: u64,
}

/// One probe's feasibility plus the configs needed to build a schedule.
struct ProbeOutcome {
    feasible: bool,
    configs: Option<Arc<Vec<Vec<usize>>>>,
}

/// Probes target `t` through the cache (RAM, then the optional warm
/// disk tier). `Err` only for oversized tables.
#[allow(clippy::too_many_arguments)]
fn probe_cached(
    inst: &Instance,
    t: u64,
    k: u64,
    engine: DpEngine,
    cache: &DpCache,
    warm: Option<&WarmTier>,
    max_table_cells: usize,
    hits: &mut u64,
    misses: &mut u64,
) -> Result<ProbeOutcome, Degrade> {
    let rounding = match Rounding::compute(inst, t, k) {
        // A job longer than `t` cannot be scheduled at all under `t`.
        RoundingOutcome::Infeasible { .. } => {
            return Ok(ProbeOutcome {
                feasible: false,
                configs: None,
            })
        }
        RoundingOutcome::Rounded(r) => r,
    };
    let problem = DpProblem::from_rounding(&rounding);
    if problem.table_size() > max_table_cells {
        return Err(Degrade::TableTooLarge {
            cells: problem.table_size(),
        });
    }
    let m = inst.machines();
    let key = problem.canonical_key();
    let entry = match cache.get(&key) {
        Some(entry) => {
            *hits += 1;
            entry
        }
        // RAM miss: fault the warm disk tier before running the DP. A
        // disk hit counts as a request-level hit (no DP ran) and is
        // promoted into RAM so the next probe stays off disk.
        None => match warm.and_then(|w| w.get(&key)) {
            Some(entry) => {
                *hits += 1;
                cache.insert(key.clone(), entry.clone(), entry_cost(&key, &entry));
                entry
            }
            None => {
                *misses += 1;
                let sol = problem.solve(engine);
                let configs = problem.extract_configs(&sol.values).map(Arc::new);
                let entry = CachedDp {
                    opt: sol.opt,
                    configs,
                };
                if let Some(w) = warm {
                    w.put(&key, &entry);
                }
                cache.insert(key.clone(), entry.clone(), entry_cost(&key, &entry));
                entry
            }
        },
    };
    Ok(ProbeOutcome {
        feasible: entry.opt != INFEASIBLE && entry.opt as usize <= m,
        configs: entry.configs.clone(),
    })
}

/// Bisects the target makespan with cache-backed probes, then assembles
/// the schedule for the converged target.
///
/// `deadline` is checked before every probe; expiry returns
/// [`Degrade::DeadlineExceeded`] and the caller falls back to a
/// heuristic. A `deadline` of `None` never expires.
#[allow(clippy::too_many_arguments)]
pub fn solve_cached(
    inst: &Instance,
    k: u64,
    engine: DpEngine,
    cache: &DpCache,
    warm: Option<&WarmTier>,
    deadline: Option<Instant>,
    max_table_cells: usize,
) -> Result<SolveOutcome, Degrade> {
    let mut lb = bounds::lower_bound(inst);
    let mut ub = bounds::upper_bound(inst);
    let mut hits = 0u64;
    let mut misses = 0u64;

    let expired = |now: Instant| deadline.is_some_and(|d| now >= d);

    // Invariant: `ub` is always probe-feasible (the initial upper bound
    // is an achieved LPT makespan, and rounding only shrinks loads).
    while lb < ub {
        if expired(Instant::now()) {
            return Err(Degrade::DeadlineExceeded);
        }
        // Overflow-safe midpoint (same fix as `search::interval`): the
        // plain sum wraps for u64-scale instances admitted by the gate.
        let t = lb + (ub - lb) / 2;
        let outcome = probe_cached(
            inst, t, k, engine, cache, warm, max_table_cells, &mut hits, &mut misses,
        )?;
        if outcome.feasible {
            ub = t;
        } else {
            lb = t + 1;
        }
    }

    if expired(Instant::now()) {
        return Err(Degrade::DeadlineExceeded);
    }
    let target = ub;
    let final_probe = probe_cached(
        inst, target, k, engine, cache, warm, max_table_cells, &mut hits, &mut misses,
    )?;
    let configs = final_probe
        .configs
        .expect("converged target is feasible, so configs exist");
    let rounding = match Rounding::compute(inst, target, k) {
        RoundingOutcome::Rounded(r) => r,
        RoundingOutcome::Infeasible { longest } => {
            unreachable!("converged target {target} below longest job {longest}")
        }
    };
    let schedule = assemble_schedule(inst, &rounding, &configs);
    Ok(SolveOutcome {
        schedule,
        target,
        machines_used: configs.len(),
        cache_hits: hits,
        cache_misses: misses,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcmax_core::gen::uniform;
    use pcmax_ptas::Ptas;
    use std::time::Duration;

    fn k_of(eps: f64) -> u64 {
        (1.0 / eps).ceil() as u64
    }

    #[test]
    fn matches_the_plain_ptas() {
        let cache = DpCache::new(4, 64 << 10);
        for seed in 0..4 {
            let inst = uniform(seed, 24, 3, 1, 50);
            let cached = solve_cached(
                &inst,
                k_of(0.3),
                DpEngine::Sequential,
                &cache,
                None,
                None,
                usize::MAX,
            )
            .unwrap();
            let plain = Ptas::new(0.3)
                .with_engine(DpEngine::Sequential)
                .solve(&inst);
            assert_eq!(cached.target, plain.target, "seed {seed}");
            let ms = cached.schedule.validate(&inst).unwrap();
            assert_eq!(ms, cached.schedule.makespan(&inst));
            // Both schedules honour the same (1+ε) bound; they need not
            // be identical, but the cached path must not be worse than
            // the plain PTAS's own guarantee envelope.
            assert!(ms as f64 <= plain.makespan as f64 * 1.5 + 1.0);
        }
    }

    #[test]
    fn repeat_solves_hit_the_cache() {
        let cache = DpCache::new(4, 64 << 10);
        let inst = uniform(9, 24, 3, 1, 50);
        let first = solve_cached(
            &inst,
            k_of(0.3),
            DpEngine::Sequential,
            &cache,
            None,
            None,
            usize::MAX,
        )
        .unwrap();
        let second = solve_cached(
            &inst,
            k_of(0.3),
            DpEngine::Sequential,
            &cache,
            None,
            None,
            usize::MAX,
        )
        .unwrap();
        assert_eq!(first.target, second.target);
        assert_eq!(second.cache_misses, 0, "second run must be all hits");
        assert!(second.cache_hits > 0);
        assert!(cache.bytes() > 0, "entries carry a byte cost");
    }

    #[test]
    fn warm_tier_answers_after_the_ram_cache_is_dropped() {
        let dir = std::env::temp_dir().join(format!(
            "pcmax-solver-warm-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let warm = WarmTier::open(&dir).unwrap();
        let inst = uniform(11, 24, 3, 1, 50);
        let cold_cache = DpCache::new(4, 64 << 10);
        let cold = solve_cached(
            &inst,
            k_of(0.3),
            DpEngine::Sequential,
            &cold_cache,
            Some(&warm),
            None,
            usize::MAX,
        )
        .unwrap();
        assert!(cold.cache_misses > 0);
        assert!(warm.appends() > 0, "misses must persist to the warm tier");
        // Fresh RAM cache, same warm dir reopened: every probe faults the
        // disk tier, none runs the DP.
        let reopened = WarmTier::open(&dir).unwrap();
        assert_eq!(reopened.rehydrated(), warm.appends());
        let fresh_cache = DpCache::new(4, 64 << 10);
        let rehydrated = solve_cached(
            &inst,
            k_of(0.3),
            DpEngine::Sequential,
            &fresh_cache,
            Some(&reopened),
            None,
            usize::MAX,
        )
        .unwrap();
        assert_eq!(rehydrated.target, cold.target);
        assert_eq!(rehydrated.cache_misses, 0, "no DP may run after rehydration");
        assert!(reopened.hits() > 0, "probes must be answered from disk");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cache_reuse_across_machine_counts() {
        // Same jobs, different m: rounded problems share keys, so the
        // second solve should run strictly fewer DPs than a cold one.
        let cache = DpCache::new(4, 64 << 10);
        let times: Vec<u64> = uniform(3, 24, 3, 1, 50).times().to_vec();
        let a = Instance::new(times.clone(), 3);
        let b = Instance::new(times, 4);
        let first =
            solve_cached(&a, 4, DpEngine::Sequential, &cache, None, None, usize::MAX).unwrap();
        let second =
            solve_cached(&b, 4, DpEngine::Sequential, &cache, None, None, usize::MAX).unwrap();
        assert!(first.cache_misses > 0);
        assert!(
            second.cache_hits > 0,
            "shared keys across m must produce hits"
        );
    }

    #[test]
    fn expired_deadline_degrades() {
        let cache = DpCache::new(4, 64 << 10);
        let inst = uniform(1, 24, 3, 1, 50);
        let already_past = Instant::now() - Duration::from_millis(1);
        let err = solve_cached(
            &inst,
            4,
            DpEngine::Sequential,
            &cache,
            None,
            Some(already_past),
            usize::MAX,
        )
        .unwrap_err();
        assert_eq!(err, Degrade::DeadlineExceeded);
    }

    #[test]
    fn oversized_tables_degrade() {
        let cache = DpCache::new(4, 64 << 10);
        // Few machines, jobs near the target: everything is long, so the
        // DP table has many class dimensions and cannot fit in 8 cells.
        let inst = uniform(2, 12, 6, 50, 100);
        let err = solve_cached(&inst, 6, DpEngine::Sequential, &cache, None, None, 8).unwrap_err();
        assert!(matches!(err, Degrade::TableTooLarge { cells } if cells > 8));
    }
}
