//! Sharded LRU cache for DP solutions.
//!
//! Lookups hash the key to one of `shards` independently-locked shards,
//! so concurrent workers rarely contend on the same mutex. Each shard is
//! a classic slab-backed LRU: a `HashMap` from key to slot index plus an
//! intrusive doubly-linked recency list threaded through the slab, giving
//! O(1) get/insert/evict without per-operation allocation (beyond the
//! slab growth itself).

use crate::stats::CacheReport;
use std::collections::HashMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

const NIL: usize = usize::MAX;

struct Node<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// One shard: slab + index + recency list, guarded by a single mutex.
struct Shard<K, V> {
    slab: Vec<Node<K, V>>,
    index: HashMap<K, usize>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
}

impl<K: Eq + Hash + Clone, V: Clone> Shard<K, V> {
    fn new() -> Self {
        Self {
            slab: Vec::new(),
            index: HashMap::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Unlinks slot `i` from the recency list.
    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slab[i].prev, self.slab[i].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    /// Links slot `i` at the head (most recently used).
    fn link_front(&mut self, i: usize) {
        self.slab[i].prev = NIL;
        self.slab[i].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn get(&mut self, key: &K) -> Option<V> {
        let &i = self.index.get(key)?;
        self.unlink(i);
        self.link_front(i);
        Some(self.slab[i].value.clone())
    }

    /// Inserts, returning `true` if an existing entry was evicted.
    fn insert(&mut self, key: K, value: V, capacity: usize) -> bool {
        if let Some(&i) = self.index.get(&key) {
            self.slab[i].value = value;
            self.unlink(i);
            self.link_front(i);
            return false;
        }
        let mut evicted = false;
        if self.index.len() >= capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            self.unlink(lru);
            let old = self.index.remove(&self.slab[lru].key);
            debug_assert_eq!(old, Some(lru));
            self.free.push(lru);
            evicted = true;
        }
        let i = match self.free.pop() {
            Some(slot) => {
                self.slab[slot] = Node {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                };
                slot
            }
            None => {
                self.slab.push(Node {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                });
                self.slab.len() - 1
            }
        };
        self.index.insert(key, i);
        self.link_front(i);
        evicted
    }
}

/// A sharded LRU cache with atomic hit/miss/eviction counters.
pub struct ShardedCache<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    capacity_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<K: Eq + Hash + Clone, V: Clone> ShardedCache<K, V> {
    /// A cache of `shards` shards, each holding up to
    /// `capacity_per_shard` entries.
    pub fn new(shards: usize, capacity_per_shard: usize) -> Self {
        assert!(shards > 0, "cache needs at least one shard");
        assert!(capacity_per_shard > 0, "shard capacity must be positive");
        Self {
            shards: (0..shards).map(|_| Mutex::new(Shard::new())).collect(),
            capacity_per_shard,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &K) -> &Mutex<Shard<K, V>> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % self.shards.len()]
    }

    /// Looks up `key`, marking it most recently used on a hit.
    pub fn get(&self, key: &K) -> Option<V> {
        let result = self.shard_of(key).lock().expect("cache shard poisoned").get(key);
        match result {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        result
    }

    /// Inserts (or refreshes) `key`, evicting the shard's LRU entry when
    /// the shard is full.
    pub fn insert(&self, key: K, value: V) {
        let evicted = self
            .shard_of(&key)
            .lock()
            .expect("cache shard poisoned")
            .insert(key, value, self.capacity_per_shard);
        if evicted {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Resident entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").index.len())
            .sum()
    }

    /// Whether no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn report(&self) -> CacheReport {
        CacheReport {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn get_and_insert_roundtrip() {
        let cache: ShardedCache<u64, String> = ShardedCache::new(4, 8);
        assert_eq!(cache.get(&1), None);
        cache.insert(1, "one".into());
        assert_eq!(cache.get(&1).as_deref(), Some("one"));
        let report = cache.report();
        assert_eq!((report.hits, report.misses, report.entries), (1, 1, 1));
    }

    #[test]
    fn evicts_least_recently_used() {
        // Single shard so the recency order is total.
        let cache: ShardedCache<u64, u64> = ShardedCache::new(1, 3);
        for i in 0..3 {
            cache.insert(i, i * 10);
        }
        // Touch 0 so 1 becomes the LRU entry.
        assert_eq!(cache.get(&0), Some(0));
        cache.insert(3, 30);
        assert_eq!(cache.get(&1), None, "LRU entry should be evicted");
        assert_eq!(cache.get(&0), Some(0));
        assert_eq!(cache.get(&2), Some(20));
        assert_eq!(cache.get(&3), Some(30));
        assert_eq!(cache.report().evictions, 1);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn reinsert_refreshes_instead_of_evicting() {
        let cache: ShardedCache<u64, u64> = ShardedCache::new(1, 2);
        cache.insert(1, 10);
        cache.insert(2, 20);
        cache.insert(1, 11); // refresh, not a new entry
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.report().evictions, 0);
        assert_eq!(cache.get(&1), Some(11));
        // 2 is now LRU; capacity pressure evicts it, not 1.
        cache.insert(3, 30);
        assert_eq!(cache.get(&2), None);
        assert_eq!(cache.get(&1), Some(11));
    }

    #[test]
    fn eviction_slots_are_reused() {
        let cache: ShardedCache<u64, u64> = ShardedCache::new(1, 2);
        for i in 0..100 {
            cache.insert(i, i);
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.report().evictions, 98);
        assert_eq!(cache.get(&99), Some(99));
        assert_eq!(cache.get(&98), Some(98));
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let cache: Arc<ShardedCache<u64, u64>> = Arc::new(ShardedCache::new(8, 64));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..256u64 {
                        let key = (t * 1000 + i) % 96;
                        cache.insert(key, key * 2);
                        if let Some(v) = cache.get(&key) {
                            assert_eq!(v, key * 2);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(cache.len() <= 8 * 64);
    }
}
