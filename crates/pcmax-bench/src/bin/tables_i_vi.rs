//! Tables I–VI: block dimensional sizes under the data-partitioning
//! divisor, checked cell-for-cell against the published values.
//!
//! These tables are a *deterministic* output of Algorithm 4's divisor
//! computation, so the reproduction is exact (the one published typo —
//! Table V row 1, an unselected extent-6 dimension printed as block 5 —
//! is corrected to 6; see `pcmax-bench::shapes`).

use ndtable::partition::DivisorRule;
use ndtable::{Divisor, Shape};
use pcmax_bench::fmt;
use pcmax_bench::shapes::paper_rows;

fn main() {
    let header: Vec<String> = [
        "size", "#dim", "dimension size", "GPU-DIM3", "published", "best", "GPU-DIMx", "published", "match",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    let mut rows = Vec::new();
    let mut unexpected = 0;
    let mut known_inconsistent = 0;
    for row in paper_rows() {
        let shape = Shape::new(&row.extents);
        let d3 = Divisor::compute(&shape, 3, DivisorRule::TableConsistent);
        let got3 = d3.block_sizes(&shape);
        let dbest = Divisor::compute(&shape, row.best_dim, DivisorRule::TableConsistent);
        let got_best = dbest.block_sizes(&shape);
        let ok = got3 == row.dim3_blocks && got_best == row.best_blocks;
        let status = if ok {
            "MATCH"
        } else if row.published_inconsistent {
            known_inconsistent += 1;
            "PAPER-INCONSISTENT"
        } else {
            unexpected += 1;
            "DIFF"
        };
        rows.push(vec![
            row.table_size.to_string(),
            row.extents.len().to_string(),
            fmt::tuple(&row.extents),
            fmt::tuple(&got3),
            fmt::tuple(&row.dim3_blocks),
            format!("DIM{}", row.best_dim),
            fmt::tuple(&got_best),
            fmt::tuple(&row.best_blocks),
            status.to_string(),
        ]);
    }
    println!("# Tables I–VI: computed block sizes vs published (exact reproduction)");
    fmt::print_table(&header, &rows);
    fmt::write_csv("tables_i_vi", &header, &rows).expect("csv");
    println!();
    println!(
        "{} rows: {} match, {} published-inconsistent (see shapes.rs for the analysis), {} unexpected",
        rows.len(),
        rows.len() - known_inconsistent - unexpected,
        known_inconsistent,
        unexpected
    );
    std::process::exit(if unexpected == 0 { 0 } else { 1 });
}
