#![warn(missing_docs)]

//! Sparsified configuration DP — the workspace's fifth engine.
//!
//! The dense engines (`pcmax-ptas`) materialise every cell of the
//! `∏(nᵢ+1)` box even though `OPT(N)` only ever walks a chain of `OPT(N)`
//! cells through it, and the paged engine (`pcmax-store`) spills that
//! same dead weight to disk. Following the sparsification viewpoint of
//! Jansen–Klein–Verschae (*Closing the Gap for Makespan Scheduling via
//! Sparsification Techniques*), this crate keeps only a **frontier** of
//! useful cells:
//!
//! * [`sweep::SparseProblem::solve`] runs a *value-layer* sweep — layer
//!   `j` holds exactly the cells reachable as the sum of `j` feasible
//!   machine configurations, so a cell's layer **is** its `OPT` value and
//!   the first layer containing `N` is `OPT(N)`;
//! * every candidate cell passes through the dominance filter of
//!   [`frontier::Frontier`]: a cell `w` is dropped when some retained
//!   `u ≥ w` (componentwise) with `val(u) ≤ val(w)` exists, because any
//!   packing of the remainder `N − u` restricts to a packing of `N − w`.
//!   Retained cells therefore carry **exact** `OPT` values (see the
//!   module docs of [`sweep`] for the invariant), which is what makes the
//!   cell-for-cell differential audit against the dense engines sound;
//! * [`predict::predict`] estimates the resident frontier against the
//!   dense table's byte cost (the `pcmax-store` page codec), so a serving
//!   layer can choose dense vs sparse vs paged *before* allocating
//!   anything — [`predict::SparsePrediction::choose`] is that ladder;
//! * [`sweep::SparseProblem::solve_bounded`] hard-caps resident cells and
//!   returns [`SparseError::FrontierOverflow`] instead of allocating past
//!   the cap, so a bad prediction degrades instead of thrashing.
//!
//! The crate sits *below* `pcmax-ptas` (like `pcmax-store` does), so the
//! PTAS layer can expose `DpProblem::solve_sparse` without a dependency
//! cycle; it consequently re-implements the small configuration DFS
//! rather than importing `pcmax_ptas::config`.
//!
//! Observability: every solve bumps `sparse.solves` / `sparse.settled_cells`
//! / `sparse.pruned` on the global [`pcmax_obs`] registry unconditionally,
//! and records `sparse.frontier_cells` (per layer), `sparse.level_us`, and
//! `sparse.prune_pct` histograms while recording is enabled.

pub mod frontier;
pub mod predict;
pub mod sweep;

pub use frontier::{CellInfo, Frontier, Insert};
pub use predict::{predict, PlannedRepr, SparsePrediction};
pub use sweep::{SparseError, SparseLayerStat, SparseProblem, SparseSolution, SparseStats};

/// Sentinel for "no feasible packing" — numerically identical to
/// `pcmax_ptas::INFEASIBLE` so mixed-engine comparisons need no mapping.
pub const INFEASIBLE: u32 = u32::MAX;
