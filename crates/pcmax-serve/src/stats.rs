//! Per-request and service-wide telemetry types.
//!
//! Everything here is serde-serialisable so operators can ship it to
//! dashboards; the line protocol in [`crate::proto`] renders the same
//! fields through [`ServiceReport::to_json`] (the workspace's serde is a
//! no-op shim, so the wire form is written by hand).

use pcmax_core::Guarantee;
use pcmax_obs::{Histogram, HistogramSnapshot, JsonWriter};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Which algorithm produced a response's schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EngineUsed {
    /// The full PTAS: rounded DP + target search.
    Ptas,
    /// Longest-processing-time fallback (deadline/size degradation).
    Lpt,
    /// LPT-revisited: LPT prefix + exact critical tail (portfolio arm
    /// and the degraded-mode fallback since the portfolio landed).
    LptRev,
    /// MULTIFIT fallback (deadline/size degradation).
    Multifit,
    /// Exact branch-and-bound (portfolio arm for tiny instances).
    Exact,
}

impl fmt::Display for EngineUsed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EngineUsed::Ptas => "ptas",
            EngineUsed::Lpt => "lpt",
            EngineUsed::LptRev => "lptrev",
            EngineUsed::Multifit => "multifit",
            EngineUsed::Exact => "exact",
        })
    }
}

impl FromStr for EngineUsed {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "ptas" => Ok(EngineUsed::Ptas),
            "lpt" => Ok(EngineUsed::Lpt),
            "lptrev" => Ok(EngineUsed::LptRev),
            "multifit" => Ok(EngineUsed::Multifit),
            "exact" => Ok(EngineUsed::Exact),
            other => Err(format!("unknown engine `{other}`")),
        }
    }
}

/// What one request cost, end to end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestStats {
    /// Time spent queued before a worker picked the request up.
    pub queue_wait_us: u64,
    /// Time spent solving (search + DP, or the heuristic fallback).
    pub solve_us: u64,
    /// DP memo-cache hits during this request's target search.
    pub cache_hits: u64,
    /// DP memo-cache misses (actual DP runs) during this request.
    pub cache_misses: u64,
    /// Whether the answer was degraded to a heuristic.
    pub degraded: bool,
    /// Which algorithm produced the schedule.
    pub engine: EngineUsed,
    /// Certified bound of the arm that actually answered — degraded
    /// responses report *their* arm's guarantee (e.g. LPT-revisited's
    /// critical-index refinement), not a blanket plain-LPT ratio.
    pub guarantee: Guarantee,
    /// A-posteriori achieved-vs-bound gap in parts per million:
    /// `(makespan − LB)·10⁶ / LB` against the area/max lower bound
    /// ([`Guarantee::gap_ppm`]). 0 means the answer provably meets the
    /// lower bound; the improver's job is driving this down with
    /// whatever deadline budget the solve left over.
    pub gap_ppm: u64,
    /// Wall-clock the anytime improver spent on this request, µs
    /// (0 when the improver is off or the deadline was exhausted).
    pub improve_us: u64,
}

/// Liveness snapshot answered by the protocol's `health` verb. The
/// cluster coordinator's heartbeat consumes these fields: uptime
/// proves the process restarted or not, queue depth is the load
/// signal, cache residency is the affinity signal, memory pressure
/// lets the coordinator deprioritise workers whose caches are
/// thrashing against their byte budget, and the warm fields describe
/// the worker's warm log so warmsync can pick rehydration donors and
/// skip digest round trips when nothing changed (old workers omit
/// them; the parse defaults both to zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct HealthReply {
    /// Microseconds since the service started.
    pub uptime_us: u64,
    /// Jobs admitted but not yet picked up by a worker.
    pub queue_depth: u64,
    /// Entries resident in the DP cache across all shards.
    pub cache_entries: u64,
    /// DP-cache residency as a percentage of its byte budget, clamped
    /// to 100.
    pub pressure_pct: u64,
    /// Distinct canonical problems in the warm log (0 without a store
    /// directory, and from pre-warmsync workers).
    pub warm_entries: u64,
    /// The warm log's highest assigned sequence number (0 without a
    /// store directory, and from pre-warmsync workers).
    pub warm_seq: u64,
}

/// Which DP representation cache-missing probes ran under, service-wide.
/// All-zero when every probe was a cache hit (or the service degraded
/// before running any DP).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ReprReport {
    /// Probes solved by a dense in-RAM engine.
    pub dense_probes: u64,
    /// Probes solved by the sparse frontier sweep.
    pub sparse_probes: u64,
    /// Probes solved by the paged engine against a tiered store.
    pub paged_probes: u64,
}

/// Aggregate state of the sharded DP cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheReport {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that ran the DP.
    pub misses: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Entries currently resident across all shards (derived stat; the
    /// budget is bytes).
    pub entries: usize,
    /// Estimated resident bytes across all shards.
    pub bytes: u64,
}

impl CacheReport {
    /// Fraction of lookups answered from the cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Memory-tier snapshot: the RAM cache measured against its byte budget
/// plus the warm disk tier's counters. All-zero (and `fault_us` empty)
/// when the service runs without a store directory.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StoreReport {
    /// Total byte budget of the RAM cache across all shards.
    pub budget_bytes: u64,
    /// Estimated bytes resident in the RAM cache.
    pub cache_bytes: u64,
    /// `cache_bytes` as a percentage of `budget_bytes`, clamped to 100.
    pub pressure_pct: u64,
    /// Distinct canonical problems persisted in the warm log.
    pub warm_entries: u64,
    /// Warm-log records recovered at open (restart warm-start).
    pub rehydrated: u64,
    /// Probes answered from the warm disk tier since open.
    pub disk_hits: u64,
    /// Solutions appended to the warm log since open.
    pub appends: u64,
    /// The warm log's highest assigned sequence number.
    pub warm_seq: u64,
    /// Warm-log generation rewrites (dead-byte compactions) since open.
    pub compactions: u64,
    /// Shipped entries applied to the warm log by `warm-push`/pull
    /// traffic since open.
    pub warmsync_applied: u64,
    /// Warm faults served from a replicated/migrated entry — cold DP
    /// recomputes that warmsync avoided.
    pub cold_misses_avoided: u64,
    /// Bytes currently charged to the replica byte budget (entries held
    /// on behalf of ring predecessors).
    pub replica_bytes: u64,
    /// Replica entries evicted oldest-first by the byte budget.
    pub replica_evictions: u64,
    /// Disk-read latency per warm hit, in µs.
    pub fault_us: HistogramSnapshot,
    /// Compute-path page faults taken by paged-engine probes (stalls the
    /// overlapped sweep exists to remove).
    pub paged_faults: u64,
    /// Prefetch disk reads issued off the compute path.
    pub prefetch_issued: u64,
    /// Page-table hits on pages a prefetch installed — faults the
    /// background stream turned into RAM hits.
    pub prefetch_hits: u64,
    /// Spill files pre-written by the write-behind stream while the page
    /// stayed resident.
    pub writebehind_writes: u64,
    /// Wall-clock of the overlapped sweep's background stream per block
    /// level, in µs (empty unless `pcmax_obs` recording was enabled).
    pub overlap_us: HistogramSnapshot,
}

impl StoreReport {
    /// Fraction of RAM-cache misses answered by the disk tier instead of
    /// recomputing the DP (0 when no misses occurred).
    pub fn disk_hit_rate(&self, ram_misses: u64) -> f64 {
        if ram_misses == 0 {
            0.0
        } else {
            self.disk_hits as f64 / ram_misses as f64
        }
    }

    /// Fraction of page-table accesses (faults + prefetch hits) that a
    /// prefetched page answered without a stall. 0 — never NaN — on a
    /// zero-traffic store, so the JSON stays parseable for dashboards.
    pub fn prefetch_hit_rate(&self) -> f64 {
        let total = self.paged_faults + self.prefetch_hits;
        if total == 0 {
            0.0
        } else {
            self.prefetch_hits as f64 / total as f64
        }
    }
}

/// One portfolio arm's lifetime counters inside a [`PortfolioReport`].
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ArmReport {
    /// Wire name of the arm (`lptrev`, `multifit`, `exact`, `dense`,
    /// `sparse`).
    pub arm: String,
    /// Requests for which the selector picked this arm up front (for
    /// heuristic safety-net answers the pick *is* the winning arm, so
    /// `chosen == won` on that path).
    pub chosen: u64,
    /// Requests this arm's answer was returned for.
    pub won: u64,
    /// Times the arm actually executed — includes race losers and
    /// safety-net runs, so `runs ≥ won`.
    pub runs: u64,
    /// Wall-clock per execution, in µs (empty unless `pcmax_obs`
    /// recording was enabled; `count` equals `runs` while enabled).
    pub latency_us: HistogramSnapshot,
}

/// Portfolio-selector telemetry: per-arm pick/win/run counts and race
/// outcomes. All-zero when the service runs a fixed arm and it never
/// loses.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PortfolioReport {
    /// One entry per arm, in canonical arm order.
    pub arms: Vec<ArmReport>,
    /// Requests where two arms raced on the rayon pool.
    pub races: u64,
    /// Races the primary (predicted-best) arm won.
    pub race_primary_wins: u64,
    /// Races the racer (hedge) arm won.
    pub race_racer_wins: u64,
}

impl PortfolioReport {
    /// Fraction of completed requests that raced two arms.
    pub fn race_rate(&self, completed: u64) -> f64 {
        if completed == 0 {
            0.0
        } else {
            self.races as f64 / completed as f64
        }
    }

    /// Writes the report as a JSON object into `w`. `completed` is the
    /// service-wide completion count the race rate is measured against.
    pub fn write_json(&self, completed: u64, w: &mut JsonWriter) {
        w.begin_object()
            .field_u64("races", self.races)
            .field_u64("race_primary_wins", self.race_primary_wins)
            .field_u64("race_racer_wins", self.race_racer_wins)
            .field_f64("race_rate", self.race_rate(completed))
            .key("arms")
            .begin_object();
        for arm in &self.arms {
            w.key(&arm.arm)
                .begin_object()
                .field_u64("chosen", arm.chosen)
                .field_u64("won", arm.won)
                .field_u64("runs", arm.runs)
                .field_u64("p50_us", arm.latency_us.quantile(0.50))
                .field_u64("p99_us", arm.latency_us.quantile(0.99))
                .key("latency_us");
            arm.latency_us.write_json(w);
            w.end_object();
        }
        w.end_object().end_object();
    }
}

/// Anytime-improver telemetry: how often the refinement pass ran after
/// the solve, and how often it strictly tightened the answer. All-zero
/// when the service runs with the improver off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ImproveReport {
    /// Requests the improver ran on (budget left after the solve).
    pub runs: u64,
    /// Requests whose makespan the improver strictly lowered.
    pub improved: u64,
}

/// Live latency/size histograms the service records into while
/// `pcmax_obs` recording is enabled. One instance lives inside the
/// service, shared by all workers.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Queue wait per completed request, in µs.
    pub queue_wait_us: Histogram,
    /// Solve time per completed request (PTAS or heuristic), in µs.
    pub solve_us: Histogram,
    /// Requests per drained batch.
    pub batch_size: Histogram,
    /// For degraded answers: how far past its deadline the request was
    /// when it finished, in µs.
    pub degraded_lateness_us: Histogram,
    /// Per-request achieved-vs-lower-bound gap, in ppm.
    pub gap_ppm: Histogram,
    /// Per-request anytime-improver wall clock, in µs (recorded only
    /// when the improver ran).
    pub improve_us: Histogram,
}

impl ServeMetrics {
    /// Point-in-time copy of every histogram.
    pub fn snapshot(&self) -> ServeHistograms {
        ServeHistograms {
            queue_wait_us: self.queue_wait_us.snapshot(),
            solve_us: self.solve_us.snapshot(),
            batch_size: self.batch_size.snapshot(),
            degraded_lateness_us: self.degraded_lateness_us.snapshot(),
            gap_ppm: self.gap_ppm.snapshot(),
            improve_us: self.improve_us.snapshot(),
        }
    }
}

/// Snapshot of the service histograms, embedded in [`ServiceReport`].
/// All-empty when `pcmax_obs` recording was never enabled.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServeHistograms {
    /// Queue wait per completed request, in µs.
    pub queue_wait_us: HistogramSnapshot,
    /// Solve time per completed request, in µs.
    pub solve_us: HistogramSnapshot,
    /// Requests per drained batch.
    pub batch_size: HistogramSnapshot,
    /// Lateness of degraded answers past their deadline, in µs.
    pub degraded_lateness_us: HistogramSnapshot,
    /// Per-request achieved-vs-lower-bound gap, in ppm.
    pub gap_ppm: HistogramSnapshot,
    /// Per-request anytime-improver wall clock, in µs.
    pub improve_us: HistogramSnapshot,
}

impl ServeHistograms {
    /// Writes the histograms as a JSON object into `w`.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object().key("queue_wait_us");
        self.queue_wait_us.write_json(w);
        w.key("solve_us");
        self.solve_us.write_json(w);
        w.key("batch_size");
        self.batch_size.write_json(w);
        w.key("degraded_lateness_us");
        self.degraded_lateness_us.write_json(w);
        w.key("gap_ppm");
        self.gap_ppm.write_json(w);
        w.key("improve_us");
        self.improve_us.write_json(w);
        w.end_object();
    }
}

/// Service-wide counters and histograms, a point-in-time snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ServiceReport {
    /// Requests admitted to the queue.
    pub accepted: u64,
    /// Requests answered (including degraded answers).
    pub completed: u64,
    /// Answers degraded to a heuristic.
    pub degraded: u64,
    /// Requests rejected because the queue was full.
    pub rejected: u64,
    /// Representation selection counts for probes that ran a DP.
    pub repr: ReprReport,
    /// Anytime-improver run/win counts.
    pub improve: ImproveReport,
    /// Portfolio-selector arm/race telemetry.
    pub portfolio: PortfolioReport,
    /// DP cache state.
    pub cache: CacheReport,
    /// Memory tiers: RAM budget/pressure and warm disk-tier counters.
    pub store: StoreReport,
    /// Latency/size histograms (all-empty unless `pcmax_obs` recording
    /// was enabled).
    pub histograms: ServeHistograms,
}

impl ServiceReport {
    /// The report as one JSON object — the payload of the TCP protocol's
    /// `stats` verb and of `BENCH_serve.json`.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object()
            .field_u64("accepted", self.accepted)
            .field_u64("completed", self.completed)
            .field_u64("degraded", self.degraded)
            .field_u64("rejected", self.rejected)
            .key("repr")
            .begin_object()
            .field_u64("dense_probes", self.repr.dense_probes)
            .field_u64("sparse_probes", self.repr.sparse_probes)
            .field_u64("paged_probes", self.repr.paged_probes)
            .end_object()
            .key("improve")
            .begin_object()
            .field_u64("runs", self.improve.runs)
            .field_u64("improved", self.improve.improved)
            .end_object()
            .key("portfolio");
        self.portfolio.write_json(self.completed, &mut w);
        w.key("cache")
            .begin_object()
            .field_u64("hits", self.cache.hits)
            .field_u64("misses", self.cache.misses)
            .field_u64("evictions", self.cache.evictions)
            .field_u64("entries", self.cache.entries as u64)
            .field_u64("bytes", self.cache.bytes)
            .field_f64("hit_rate", self.cache.hit_rate())
            .end_object()
            .key("store")
            .begin_object()
            .field_u64("budget_bytes", self.store.budget_bytes)
            .field_u64("cache_bytes", self.store.cache_bytes)
            .field_u64("pressure_pct", self.store.pressure_pct)
            .field_u64("warm_entries", self.store.warm_entries)
            .field_u64("rehydrated", self.store.rehydrated)
            .field_u64("disk_hits", self.store.disk_hits)
            .field_u64("appends", self.store.appends)
            .field_u64("warm_seq", self.store.warm_seq)
            .field_u64("compactions", self.store.compactions)
            .field_u64("warmsync_applied", self.store.warmsync_applied)
            .field_u64("cold_misses_avoided", self.store.cold_misses_avoided)
            .field_u64("replica_bytes", self.store.replica_bytes)
            .field_u64("replica_evictions", self.store.replica_evictions)
            .field_f64("ram_hit_rate", self.cache.hit_rate())
            .field_f64(
                "disk_hit_rate",
                self.store.disk_hit_rate(self.cache.misses),
            )
            .field_u64("paged_faults", self.store.paged_faults)
            .field_u64("prefetch_issued", self.store.prefetch_issued)
            .field_u64("prefetch_hits", self.store.prefetch_hits)
            .field_u64("writebehind_writes", self.store.writebehind_writes)
            .field_f64("prefetch_hit_rate", self.store.prefetch_hit_rate())
            .key("fault_us");
        self.store.fault_us.write_json(&mut w);
        w.key("overlap_us");
        self.store.overlap_us.write_json(&mut w);
        w.end_object().key("histograms");
        self.histograms.write_json(&mut w);
        w.end_object();
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_roundtrips_through_display() {
        for e in [
            EngineUsed::Ptas,
            EngineUsed::Lpt,
            EngineUsed::LptRev,
            EngineUsed::Multifit,
            EngineUsed::Exact,
        ] {
            assert_eq!(e.to_string().parse::<EngineUsed>().unwrap(), e);
        }
        assert!("gpu".parse::<EngineUsed>().is_err());
    }

    #[test]
    fn report_json_includes_counters_and_histograms() {
        let metrics = ServeMetrics::default();
        metrics.queue_wait_us.record(100);
        metrics.solve_us.record(2_000);
        metrics.batch_size.record(4);
        let report = ServiceReport {
            accepted: 5,
            completed: 4,
            degraded: 1,
            rejected: 1,
            repr: ReprReport {
                dense_probes: 6,
                sparse_probes: 2,
                paged_probes: 1,
            },
            improve: ImproveReport {
                runs: 3,
                improved: 2,
            },
            portfolio: PortfolioReport {
                arms: vec![ArmReport {
                    arm: "lptrev".into(),
                    chosen: 3,
                    won: 2,
                    runs: 4,
                    latency_us: HistogramSnapshot::default(),
                }],
                races: 2,
                race_primary_wins: 1,
                race_racer_wins: 1,
            },
            cache: CacheReport {
                hits: 3,
                misses: 1,
                evictions: 0,
                entries: 4,
                bytes: 512,
            },
            store: StoreReport {
                budget_bytes: 1024,
                cache_bytes: 512,
                pressure_pct: 50,
                warm_entries: 2,
                rehydrated: 2,
                disk_hits: 1,
                appends: 3,
                warm_seq: 7,
                compactions: 1,
                warmsync_applied: 2,
                cold_misses_avoided: 1,
                replica_bytes: 256,
                replica_evictions: 1,
                fault_us: HistogramSnapshot::default(),
                paged_faults: 4,
                prefetch_issued: 6,
                prefetch_hits: 4,
                writebehind_writes: 5,
                overlap_us: HistogramSnapshot::default(),
            },
            histograms: metrics.snapshot(),
        };
        let json = report.to_json();
        assert!(json.contains("\"accepted\":5"), "{json}");
        assert!(json.contains("\"bytes\":512"), "{json}");
        assert!(json.contains("\"hit_rate\":0.75"), "{json}");
        assert!(
            json.contains("\"repr\":{\"dense_probes\":6,\"sparse_probes\":2,\"paged_probes\":1}"),
            "{json}"
        );
        assert!(
            json.contains("\"improve\":{\"runs\":3,\"improved\":2}"),
            "{json}"
        );
        assert!(json.contains("\"gap_ppm\":{\"count\":0"), "{json}");
        assert!(json.contains("\"improve_us\":{\"count\":0"), "{json}");
        assert!(json.contains("\"races\":2"), "{json}");
        assert!(json.contains("\"race_rate\":0.5"), "{json}");
        assert!(
            json.contains("\"lptrev\":{\"chosen\":3,\"won\":2,\"runs\":4"),
            "{json}"
        );
        assert!(json.contains("\"budget_bytes\":1024"), "{json}");
        assert!(json.contains("\"pressure_pct\":50"), "{json}");
        assert!(json.contains("\"rehydrated\":2"), "{json}");
        assert!(json.contains("\"warm_seq\":7"), "{json}");
        assert!(json.contains("\"compactions\":1"), "{json}");
        assert!(json.contains("\"warmsync_applied\":2"), "{json}");
        assert!(json.contains("\"cold_misses_avoided\":1"), "{json}");
        assert!(json.contains("\"replica_bytes\":256"), "{json}");
        assert!(json.contains("\"replica_evictions\":1"), "{json}");
        assert!(json.contains("\"ram_hit_rate\":0.75"), "{json}");
        assert!(json.contains("\"disk_hit_rate\":1"), "{json}");
        assert!(json.contains("\"paged_faults\":4"), "{json}");
        assert!(json.contains("\"prefetch_issued\":6"), "{json}");
        assert!(json.contains("\"prefetch_hits\":4"), "{json}");
        assert!(json.contains("\"writebehind_writes\":5"), "{json}");
        assert!(json.contains("\"prefetch_hit_rate\":0.5"), "{json}");
        assert!(json.contains("\"overlap_us\":{\"count\":0"), "{json}");
        assert!(json.contains("\"fault_us\":{\"count\":0"), "{json}");
        assert!(json.contains("\"queue_wait_us\":{\"count\":1"), "{json}");
        assert!(json.contains("\"solve_us\":{\"count\":1"), "{json}");
        assert!(json.contains("\"degraded_lateness_us\":{\"count\":0"), "{json}");
    }

    #[test]
    fn hit_rate_handles_idle_cache() {
        assert_eq!(CacheReport::default().hit_rate(), 0.0);
        let report = CacheReport {
            hits: 3,
            misses: 1,
            evictions: 0,
            entries: 4,
            bytes: 64,
        };
        assert!((report.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn zero_traffic_report_emits_finite_hit_rates_not_nan() {
        // Regression: a freshly started (or store-less) service has zero
        // accesses on every tier. Naive `hits / total` divisions are
        // 0/0 = NaN, which the JSON writer renders as `null` and
        // dashboards choke on. Every rate must come out 0, and the wire
        // form must stay free of null/NaN for all rate fields.
        let report = ServiceReport::default();
        assert_eq!(report.cache.hit_rate(), 0.0);
        assert_eq!(report.store.disk_hit_rate(0), 0.0);
        assert_eq!(report.store.prefetch_hit_rate(), 0.0);
        assert_eq!(report.portfolio.race_rate(0), 0.0);
        let json = report.to_json();
        assert!(json.contains("\"hit_rate\":0"), "{json}");
        assert!(json.contains("\"ram_hit_rate\":0"), "{json}");
        assert!(json.contains("\"disk_hit_rate\":0"), "{json}");
        assert!(json.contains("\"prefetch_hit_rate\":0"), "{json}");
        assert!(json.contains("\"race_rate\":0"), "{json}");
        assert!(!json.contains("null"), "rate field decayed to null: {json}");
        assert!(!json.contains("NaN"), "{json}");
    }

    #[test]
    fn disk_hit_rate_handles_idle_store() {
        let store = StoreReport::default();
        assert_eq!(store.disk_hit_rate(0), 0.0);
        let store = StoreReport {
            disk_hits: 3,
            ..StoreReport::default()
        };
        assert!((store.disk_hit_rate(4) - 0.75).abs() < 1e-12);
    }
}
