//! Phase 2: seeded island GA over assignment chromosomes.
//!
//! A chromosome is a direct job→machine assignment vector (every gene
//! value `< m` is valid, so crossover and mutation never need repair).
//! The descent result seeds individual 0 of every island; the rest of
//! each island starts as mutated copies. Each generation *all* islands'
//! offspring are concatenated into one batch handed to
//! [`crate::fitness::evaluate_batch`] — that batch is the atomic unit
//! the deadline is checked against, so the GA overruns its budget by at
//! most one evaluation batch. Every
//! [`MIGRATION_INTERVAL`] generations a deterministic ring migration
//! copies island *i*'s best over island *(i+1) mod I*'s worst.
//!
//! All randomness (tournament draws, crossover masks, mutation sites)
//! comes from one [`SmallRng`] seeded with [`ImproveConfig::seed`], and
//! fitness values are identical on both eval paths, so a fixed seed
//! reproduces the run exactly — on either path.

use crate::fitness::{evaluate_batch, makespan_of};
use crate::{ImproveConfig, ImproveStats};
use pcmax_core::instance::Instance;
use pcmax_core::schedule::Schedule;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Generations between ring migrations.
pub const MIGRATION_INTERVAL: u64 = 4;

/// Tournament size for parent selection.
const TOURNAMENT: usize = 3;

/// Runs the island GA from `seed_schedule` until the generation cap or
/// `deadline`. Returns the best schedule ever observed (including the
/// seed itself — monotone by construction).
pub fn run(
    inst: &Instance,
    seed_schedule: &Schedule,
    cfg: &ImproveConfig,
    islands: usize,
    pop: usize,
    deadline: Instant,
    stats: &mut ImproveStats,
) -> Schedule {
    let n = inst.num_jobs();
    let m = inst.machines();
    if n == 0 || m <= 1 {
        return seed_schedule.clone(); // nothing a reassignment can change
    }
    let islands = islands.max(1);
    let pop = pop.max(2);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);

    let seed_genes = seed_schedule.assignment().to_vec();
    let mut best_genes = seed_genes.clone();
    let mut best_fit = makespan_of(inst, &seed_genes);

    // Island i, individual 0 is the seed; the rest are mutated copies.
    let mut populations: Vec<Vec<Vec<usize>>> = (0..islands)
        .map(|_| {
            (0..pop)
                .map(|i| {
                    let mut genes = seed_genes.clone();
                    if i > 0 {
                        mutate(&mut genes, m, &mut rng);
                    }
                    genes
                })
                .collect()
        })
        .collect();

    if Instant::now() >= deadline {
        return seed_schedule.clone();
    }
    let mut fitness = evaluate_flat(inst, &populations, cfg, stats);

    for gen in 0..cfg.max_generations as u64 {
        if Instant::now() >= deadline {
            break;
        }

        // Breed every island, then evaluate ALL offspring as one batch.
        let offspring: Vec<Vec<Vec<usize>>> = populations
            .iter()
            .zip(&fitness)
            .map(|(island, fit)| breed_island(island, fit, m, &mut rng))
            .collect();
        let offspring_fit = evaluate_flat(inst, &offspring, cfg, stats);
        stats.generations += 1;
        populations = offspring;
        fitness = offspring_fit;

        for (island, fit) in populations.iter().zip(&fitness) {
            let (idx, &f) = argmin(fit);
            if f < best_fit {
                best_fit = f;
                best_genes = island[idx].clone();
            }
        }

        if (gen + 1) % MIGRATION_INTERVAL == 0 && islands > 1 {
            migrate_ring(&mut populations, &mut fitness);
        }
    }

    Schedule::new(best_genes, m)
}

/// One island's next generation: the current best survives verbatim
/// (elitism), the rest are tournament-selected, crossed, mutated.
fn breed_island(
    island: &[Vec<usize>],
    fit: &[u64],
    m: usize,
    rng: &mut SmallRng,
) -> Vec<Vec<usize>> {
    let (elite_idx, _) = argmin(fit);
    let mut next = Vec::with_capacity(island.len());
    next.push(island[elite_idx].clone());
    while next.len() < island.len() {
        let a = tournament(fit, rng);
        let b = tournament(fit, rng);
        let mut child = crossover(&island[a], &island[b], rng);
        mutate(&mut child, m, rng);
        next.push(child);
    }
    next
}

/// Tournament selection: best of [`TOURNAMENT`] uniform draws (ties →
/// earliest draw).
fn tournament(fit: &[u64], rng: &mut SmallRng) -> usize {
    let mut winner = rng.gen_range(0..fit.len());
    for _ in 1..TOURNAMENT {
        let challenger = rng.gen_range(0..fit.len());
        if fit[challenger] < fit[winner] {
            winner = challenger;
        }
    }
    winner
}

/// Uniform crossover: each gene comes from either parent with equal
/// probability. Direct encoding keeps every child valid.
fn crossover(a: &[usize], b: &[usize], rng: &mut SmallRng) -> Vec<usize> {
    a.iter()
        .zip(b)
        .map(|(&ga, &gb)| if rng.gen_bool(0.5) { ga } else { gb })
        .collect()
}

/// Point mutation: each gene is reassigned to a uniform machine with
/// probability `1/n` — one expected reassignment per chromosome.
fn mutate(genes: &mut [usize], m: usize, rng: &mut SmallRng) {
    let n = genes.len().max(1) as u32;
    for g in genes.iter_mut() {
        if rng.gen_ratio(1, n) {
            *g = rng.gen_range(0..m);
        }
    }
}

/// Deterministic ring migration: island *i*'s best replaces island
/// *(i+1) mod I*'s worst (fitness value travels with the genes, so no
/// re-evaluation is needed).
fn migrate_ring(populations: &mut [Vec<Vec<usize>>], fitness: &mut [Vec<u64>]) {
    let islands = populations.len();
    let emigrants: Vec<(Vec<usize>, u64)> = populations
        .iter()
        .zip(fitness.iter())
        .map(|(island, fit)| {
            let (idx, &f) = argmin(fit);
            (island[idx].clone(), f)
        })
        .collect();
    for (i, (genes, f)) in emigrants.into_iter().enumerate() {
        let dst = (i + 1) % islands;
        let (worst, _) = argmax(&fitness[dst]);
        populations[dst][worst] = genes;
        fitness[dst][worst] = f;
    }
}

/// Evaluates all islands' chromosomes as ONE batch, preserving island
/// boundaries in the result.
fn evaluate_flat(
    inst: &Instance,
    populations: &[Vec<Vec<usize>>],
    cfg: &ImproveConfig,
    stats: &mut ImproveStats,
) -> Vec<Vec<u64>> {
    let flat: Vec<Vec<usize>> = populations.iter().flatten().cloned().collect();
    stats.evaluations += flat.len() as u64;
    let values = evaluate_batch(inst, &flat, cfg.eval);
    let mut out = Vec::with_capacity(populations.len());
    let mut cursor = 0;
    for island in populations {
        out.push(values[cursor..cursor + island.len()].to_vec());
        cursor += island.len();
    }
    out
}

fn argmin(values: &[u64]) -> (usize, &u64) {
    values
        .iter()
        .enumerate()
        .min_by_key(|&(i, v)| (*v, i))
        .map(|(i, v)| (i, v))
        .expect("non-empty")
}

fn argmax(values: &[u64]) -> (usize, &u64) {
    values
        .iter()
        .enumerate()
        .max_by_key(|&(i, v)| (*v, std::cmp::Reverse(i)))
        .map(|(i, v)| (i, v))
        .expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fitness::EvalPath;
    use std::time::Duration;

    fn far_deadline() -> Instant {
        Instant::now() + Duration::from_secs(600)
    }

    fn cfg() -> ImproveConfig {
        ImproveConfig {
            max_generations: 10,
            ..ImproveConfig::default()
        }
    }

    #[test]
    fn never_worse_than_seed() {
        let inst = Instance::new(vec![9, 7, 6, 5, 4, 4, 3, 2, 2], 3);
        let piled = Schedule::new(vec![0; 9], 3);
        let mut stats = ImproveStats::default();
        let out = run(&inst, &piled, &cfg(), 2, 8, far_deadline(), &mut stats);
        assert!(out.makespan(&inst) <= piled.makespan(&inst));
        assert_eq!(out.validate(&inst).unwrap(), out.makespan(&inst));
        assert!(stats.generations > 0);
        // 2 islands × 8 pop × (1 init + 10 gens) evaluations.
        assert_eq!(stats.evaluations, 2 * 8 * 11);
    }

    #[test]
    fn fixed_seed_reproduces_on_both_eval_paths() {
        let inst = Instance::new(vec![23, 19, 17, 13, 11, 7, 7, 5, 3, 2], 4);
        let seed = pcmax_core::heuristics::lpt(&inst);
        let mut base = cfg();
        base.seed = 7;
        let mut warp = base;
        warp.eval = EvalPath::WarpModel;
        let mut s1 = ImproveStats::default();
        let mut s2 = ImproveStats::default();
        let a = run(&inst, &seed, &base, 3, 6, far_deadline(), &mut s1);
        let b = run(&inst, &seed, &warp, 3, 6, far_deadline(), &mut s2);
        assert_eq!(a, b, "eval path must not change the search trajectory");
        assert_eq!(s1.evaluations, s2.evaluations);
    }

    #[test]
    fn single_machine_or_empty_is_identity() {
        let inst = Instance::new(vec![5, 4], 1);
        let s = Schedule::new(vec![0, 0], 1);
        let mut stats = ImproveStats::default();
        let out = run(&inst, &s, &cfg(), 2, 4, far_deadline(), &mut stats);
        assert_eq!(out, s);
        assert_eq!(stats.evaluations, 0);
    }

    #[test]
    fn expired_deadline_returns_seed() {
        let inst = Instance::new(vec![9, 7, 6, 5], 2);
        let s = Schedule::new(vec![0, 0, 0, 0], 2);
        let mut stats = ImproveStats::default();
        let past = Instant::now() - Duration::from_millis(1);
        let out = run(&inst, &s, &cfg(), 2, 4, past, &mut stats);
        assert_eq!(out, s);
        assert_eq!(stats.generations, 0);
    }

    #[test]
    fn migration_moves_the_ring_best() {
        let mut pops = vec![
            vec![vec![0, 0], vec![1, 1]],
            vec![vec![0, 1], vec![1, 0]],
        ];
        let mut fit = vec![vec![5, 9], vec![7, 8]];
        migrate_ring(&mut pops, &mut fit);
        // Island 0's best (fit 5) replaced island 1's worst (fit 8).
        assert_eq!(fit[1], vec![7, 5]);
        assert_eq!(pops[1][1], vec![0, 0]);
        // Island 1's best (fit 7) replaced island 0's worst (fit 9).
        assert_eq!(fit[0], vec![5, 7]);
        assert_eq!(pops[0][1], vec![0, 1]);
    }
}
