//! One registered worker: address, health state, pooled connection, and
//! per-worker counters.

use crate::ring::worker_seed;
use pcmax_obs::{Counter, Histogram};
use pcmax_serve::Client;
use std::net::SocketAddr;
use std::sync::Mutex;

/// Health state of a worker, driven by heartbeats and by transport
/// failures observed on the solve path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerState {
    /// Whether the ring currently routes to this worker.
    pub up: bool,
    /// Consecutive missed heartbeats / transport failures. Reset to 0 by
    /// any successful round-trip.
    pub missed_beats: u32,
    /// Memory pressure the worker last reported over its `health` verb
    /// (DP-cache bytes as a percentage of its budget, clamped to 100).
    /// 0 until the first heartbeat answers.
    pub pressure_pct: u64,
    /// Queue depth the worker last reported over `health`.
    pub queue_depth: u64,
    /// Live warm-log entry count from the last heartbeat.
    pub warm_entries: u64,
    /// Warm-log high-water sequence number from the last heartbeat.
    /// The warmsync engine compares it against [`WorkerNode`]'s
    /// replication watermark to decide whether a pull is due, and
    /// against the cached digest's seq to skip digest round-trips for
    /// unchanged workers.
    pub warm_seq: u64,
}

/// Per-worker counters, aggregated into the cluster report.
#[derive(Debug, Default)]
pub struct WorkerCounters {
    /// Solve attempts routed at this worker (including retries).
    pub attempts: Counter,
    /// Requests this worker answered with an `ok` line.
    pub ok: Counter,
    /// Server `err` lines (overloaded, shutting down, …).
    pub server_errors: Counter,
    /// Transport failures (connect/send/recv) against this worker.
    pub transport_errors: Counter,
    /// Requests this worker served after a failover from a
    /// higher-ranked worker.
    pub failover_serves: Counter,
    /// End-to-end coordinator-side latency of requests this worker
    /// served, in µs (recorded only while `pcmax_obs` is enabled).
    pub latency_us: Histogram,
}

/// A registered worker node.
pub struct WorkerNode {
    /// Operator-facing identifier (also the rendezvous identity).
    pub id: String,
    /// The worker's `pcmax serve` TCP endpoint.
    pub addr: SocketAddr,
    /// Rendezvous seed, derived from `id` once at registration.
    pub seed: u64,
    /// Health state (heartbeat- and solve-path-driven).
    pub state: Mutex<WorkerState>,
    /// Pooled line-protocol connection. One in-flight request at a time
    /// (the protocol is strict request/response); concurrent requests to
    /// the same worker serialise on this mutex. `None` until first use
    /// and after any transport failure.
    pub conn: Mutex<Option<Client>>,
    /// Replication watermark: the worker's warm-log seq up to which the
    /// coordinator has already pulled and shipped entries to replicas.
    /// Entries with `seq > synced_seq` are the unshipped suffix.
    pub synced_seq: Mutex<u64>,
    /// Cached `warm-digest` reply as `(warm_seq_at_fetch, (hash, seq))`.
    /// Valid while the worker's heartbeat-reported `warm_seq` matches
    /// the cached one, so unchanged workers cost no digest round-trip.
    pub digest_cache: Mutex<Option<(u64, Vec<(u64, u64)>)>>,
    /// Telemetry.
    pub counters: WorkerCounters,
}

impl WorkerNode {
    /// A freshly registered worker, assumed up until proven otherwise.
    pub fn new(id: &str, addr: SocketAddr) -> Self {
        Self {
            id: id.to_string(),
            addr,
            seed: worker_seed(id),
            state: Mutex::new(WorkerState {
                up: true,
                missed_beats: 0,
                pressure_pct: 0,
                queue_depth: 0,
                warm_entries: 0,
                warm_seq: 0,
            }),
            conn: Mutex::new(None),
            synced_seq: Mutex::new(0),
            digest_cache: Mutex::new(None),
            counters: WorkerCounters::default(),
        }
    }

    /// Whether the ring currently routes to this worker.
    pub fn is_up(&self) -> bool {
        self.state.lock().expect("worker state poisoned").up
    }

    /// Snapshot of the health state.
    pub fn state(&self) -> WorkerState {
        *self.state.lock().expect("worker state poisoned")
    }

    /// Memory pressure from the last answered heartbeat.
    pub fn pressure_pct(&self) -> u64 {
        self.state.lock().expect("worker state poisoned").pressure_pct
    }

    /// Records the pressure a heartbeat reply carried.
    pub fn set_pressure(&self, pressure_pct: u64) {
        self.state.lock().expect("worker state poisoned").pressure_pct = pressure_pct;
    }

    /// Records everything a heartbeat `health` reply carried.
    pub fn set_health(&self, reply: &pcmax_serve::HealthReply) {
        let mut state = self.state.lock().expect("worker state poisoned");
        state.pressure_pct = reply.pressure_pct;
        state.queue_depth = reply.queue_depth;
        state.warm_entries = reply.warm_entries;
        state.warm_seq = reply.warm_seq;
    }

    /// Warm-log high-water seq from the last heartbeat.
    pub fn warm_seq(&self) -> u64 {
        self.state.lock().expect("worker state poisoned").warm_seq
    }

    /// The replication watermark (last seq pulled for shipping).
    pub fn synced_seq(&self) -> u64 {
        *self.synced_seq.lock().expect("synced_seq poisoned")
    }

    /// Advances the replication watermark (monotonic).
    pub fn set_synced_seq(&self, seq: u64) {
        let mut guard = self.synced_seq.lock().expect("synced_seq poisoned");
        *guard = (*guard).max(seq);
    }

    /// Drops the pooled connection (after a transport failure).
    pub fn drop_conn(&self) {
        *self.conn.lock().expect("worker conn poisoned") = None;
    }
}
