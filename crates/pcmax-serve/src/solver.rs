//! Cache-backed PTAS solving with deadline checks.
//!
//! The service's solve path re-implements the target bisection of
//! `pcmax_ptas::search` on top of the shared [`ShardedCache`]: every DP
//! probe first canonicalises its rounded problem to a
//! [`DpKey`] — `(class counts, gcd-normalised sizes, normalised
//! capacity)` — and consults the cache. Distinct instances (and distinct
//! targets of the *same* instance) frequently collapse to the same key,
//! so a warm service answers most probes without running the DP at all.
//!
//! Cached entries are machine-count independent: the DP computes
//! `OPT(N)`, the minimum number of machines, and feasibility for a
//! request is just `OPT(N) ≤ m` — so a solution cached for one `m` is
//! reusable verbatim for any other.

use crate::cache::ShardedCache;
use crate::warm::WarmTier;
use pcmax_core::{bounds, Instance, Schedule};
use pcmax_ptas::dp::INFEASIBLE;
use pcmax_ptas::ptas::assemble_schedule;
use pcmax_ptas::rounding::{Rounding, RoundingOutcome};
use pcmax_ptas::{DpEngine, DpKey, DpProblem};
use pcmax_sparse::{PlannedRepr, SparseError};
use pcmax_store::{ScratchDir, StoreBudget, StoreConfig, TieredStore};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The DP cache the whole service shares.
pub type DpCache = ShardedCache<DpKey, CachedDp>;

/// A memoised DP outcome, keyed by [`DpKey`].
#[derive(Clone)]
pub struct CachedDp {
    /// `OPT(N)`: minimum machines for the rounded long jobs
    /// ([`INFEASIBLE`] when they cannot be packed at all).
    pub opt: u32,
    /// Machine configurations realising `opt` (absent when infeasible).
    /// `Arc`-shared: hits clone the pointer, not the table walk.
    pub configs: Option<Arc<Vec<Vec<usize>>>>,
}

/// Estimated resident bytes of one cache entry: key vectors (held twice,
/// in the index and the slab node), config vectors with their `Vec`
/// headers, plus fixed slab/index/`Arc` overhead. An estimate — the
/// cache budget bounds approximate memory, not allocator-exact bytes.
pub fn entry_cost(key: &DpKey, entry: &CachedDp) -> u64 {
    let key_bytes = (key.counts().len() + key.sizes().len()) as u64 * 8 + 8;
    let config_bytes = entry.configs.as_ref().map_or(0, |configs| {
        24 + configs
            .iter()
            .map(|c| 24 + 8 * c.len() as u64)
            .sum::<u64>()
    });
    96 + 2 * key_bytes + config_bytes
}

/// Why a request could not be answered by the PTAS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Degrade {
    /// The per-request deadline expired mid-search.
    DeadlineExceeded,
    /// A probe's DP exceeded the configured cell budget under *every*
    /// admitted representation (dense, sparse, paged).
    TableTooLarge {
        /// Cells the cheapest attempted representation would have held
        /// resident.
        cells: usize,
    },
}

/// Which DP representations a solve may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReprPolicy {
    /// Dense in-RAM tables only — the pre-sparsification behaviour:
    /// a table over the cell budget degrades immediately.
    DenseOnly,
    /// Sparse frontier only (useful for differential testing); the
    /// runtime cell cap still applies.
    SparseOnly,
    /// Predict per probe: dense while the table fits the cell budget,
    /// else sparse while the estimated frontier fits, else paged when a
    /// pages directory is configured.
    #[default]
    Auto,
}

/// Everything the solve path needs to know beyond the instance: engine,
/// representation policy, admission budget, and the page store used by
/// the paged arm.
#[derive(Debug, Clone)]
pub struct SolverOptions {
    /// DP engine for dense cache misses.
    pub engine: DpEngine,
    /// Which representations a probe may use.
    pub repr: ReprPolicy,
    /// Largest resident cell count any representation may allocate.
    pub max_table_cells: usize,
    /// Spill directory for the paged arm. `None` disables paged solves
    /// (the `Auto` ladder then ends at sparse).
    pub pages_dir: Option<PathBuf>,
    /// RAM budget of each paged solve's tiered store.
    pub pages_budget: StoreBudget,
}

impl Default for SolverOptions {
    fn default() -> Self {
        Self {
            engine: DpEngine::AntiDiagonal,
            repr: ReprPolicy::Auto,
            max_table_cells: usize::MAX,
            pages_dir: None,
            pages_budget: StoreBudget::default(),
        }
    }
}

impl SolverOptions {
    /// Options with the given engine and everything else default —
    /// unbounded, `Auto` representation, no page store.
    pub fn new(engine: DpEngine) -> Self {
        Self {
            engine,
            ..Self::default()
        }
    }
}

/// How many cache-missing probes ran under each representation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReprCounts {
    /// Probes solved by a dense in-RAM engine.
    pub dense: u64,
    /// Probes solved by the sparse frontier sweep.
    pub sparse: u64,
    /// Probes solved by the paged engine against a tiered store.
    pub paged: u64,
}

impl ReprCounts {
    fn bump(&mut self, repr: PlannedRepr) {
        match repr {
            PlannedRepr::Dense => self.dense += 1,
            PlannedRepr::Sparse => self.sparse += 1,
            PlannedRepr::Paged => self.paged += 1,
        }
    }

    /// Total probes that ran a DP (any representation).
    pub fn total(&self) -> u64 {
        self.dense + self.sparse + self.paged
    }
}

/// A completed cache-backed PTAS solve.
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// Valid schedule of all jobs.
    pub schedule: Schedule,
    /// Converged target `T*`.
    pub target: u64,
    /// Machines the DP used for the long jobs.
    pub machines_used: usize,
    /// Probes answered from the shared cache.
    pub cache_hits: u64,
    /// Probes that ran the DP.
    pub cache_misses: u64,
    /// Representation each cache-missing probe ran under.
    pub repr: ReprCounts,
}

/// Store cost model reused by the portfolio selector: estimated ns per
/// resident DP cell per probe. Dense is one slab pass; sparse pays hash
/// + value-bucket overhead per retained cell; paged amortises page-codec
/// and fault traffic on top. Upper-biased on purpose — the selector
/// should only commit to a DP when it is *comfortably* affordable.
const DENSE_NS_PER_CELL: u64 = 8;
const SPARSE_NS_PER_CELL: u64 = 60;
const PAGED_NS_PER_CELL: u64 = 600;

/// Cheap per-instance features the portfolio selector keys on. Probing
/// costs one `Rounding::compute` + one table-size prediction — no DP
/// cells are ever allocated.
#[derive(Debug, Clone, Copy)]
pub struct InstanceFeatures {
    /// Number of jobs.
    pub n: usize,
    /// Number of machines.
    pub m: usize,
    /// PTAS rounding parameter `k = ⌈1/ε⌉` the features were probed at.
    pub k: u64,
    /// Shortest processing time.
    pub min_time: u64,
    /// Longest processing time.
    pub max_time: u64,
    /// Time spread `(max − min)·100 / max` — 0 for uniform instances.
    pub spread_pct: u64,
    /// Coefficient of variation of the times ×100 (integerised f64).
    pub cv_pct: u64,
    /// Area/max lower bound on the optimum.
    pub lb: u64,
    /// List-scheduling upper bound on the optimum.
    pub ub: u64,
    /// Dense cells of the bisection-midpoint probe's rounded problem.
    pub dense_cells: u64,
    /// Dense bytes of that table under the store's page codec.
    pub dense_bytes: u64,
    /// Estimated resident sparse-frontier cells for the same probe.
    pub sparse_cells: u64,
    /// Estimated resident sparse bytes.
    pub sparse_bytes: u64,
    /// Representation the admission ladder would run the midpoint probe
    /// under; `None` when every representation is over the cell budget
    /// (the DP arms are unavailable).
    pub planned: Option<PlannedRepr>,
    /// Bisection probes the target search will need (bits of `ub − lb`,
    /// plus the final assembly probe).
    pub est_probes: u32,
    /// Upper-biased wall-clock estimate for the whole cache-cold DP
    /// search under `planned`, in µs (0 when no representation admits).
    pub est_dp_us: u64,
}

/// Probes the features of one instance at rounding parameter `k` under
/// the given solver options (the cell budget and pages directory decide
/// which representations are admissible).
pub fn probe_features(inst: &Instance, k: u64, opts: &SolverOptions) -> InstanceFeatures {
    let n = inst.num_jobs();
    let m = inst.machines();
    let lb = bounds::lower_bound(inst);
    let ub = bounds::upper_bound(inst);
    let min_time = (0..n).map(|j| inst.time(j)).min().unwrap_or(0);
    let max_time = inst.max_time();
    let spread_pct = if max_time == 0 {
        0
    } else {
        ((max_time - min_time) as u128 * 100 / max_time as u128) as u64
    };
    let cv_pct = cv_pct(inst);
    // The bisection midpoint's rounding stands in for the whole search:
    // table dimensions depend on the target only through the class
    // structure, which varies slowly across the interval.
    let t = lb + (ub - lb) / 2;
    let (dense_cells, dense_bytes, sparse_cells, sparse_bytes, planned) =
        match Rounding::compute(inst, t, k) {
            // Unreachable in practice (t ≥ lb ≥ max tⱼ), kept total.
            RoundingOutcome::Infeasible { .. } => (0, 0, 0, 0, None),
            RoundingOutcome::Rounded(r) => {
                let problem = DpProblem::from_rounding(&r);
                let p = problem.predict_sparse();
                let planned = plan_repr(&problem, opts).ok();
                (
                    p.dense_cells,
                    p.dense_bytes,
                    p.est_sparse_cells,
                    p.est_sparse_bytes,
                    planned,
                )
            }
        };
    let est_probes = 64 - (ub - lb).leading_zeros() + 1;
    let (cells, per_cell_ns) = match planned {
        Some(PlannedRepr::Dense) => (dense_cells, DENSE_NS_PER_CELL),
        Some(PlannedRepr::Sparse) => (sparse_cells, SPARSE_NS_PER_CELL),
        Some(PlannedRepr::Paged) => (dense_cells, PAGED_NS_PER_CELL),
        None => (0, 0),
    };
    let est_dp_us = ((cells as u128 * per_cell_ns as u128 * est_probes as u128).div_ceil(1000))
        .min(u64::MAX as u128) as u64;
    InstanceFeatures {
        n,
        m,
        k,
        min_time,
        max_time,
        spread_pct,
        cv_pct,
        lb,
        ub,
        dense_cells,
        dense_bytes,
        sparse_cells,
        sparse_bytes,
        planned,
        est_probes,
        est_dp_us,
    }
}

/// Coefficient of variation of the job times, ×100. f64 is fine for a
/// feature: times near u64::MAX would overflow any exact integer
/// variance accumulator, and the selector only needs coarse buckets.
pub(crate) fn cv_pct(inst: &Instance) -> u64 {
    let n = inst.num_jobs();
    let mean = (0..n).map(|j| inst.time(j) as f64).sum::<f64>() / n.max(1) as f64;
    if mean > 0.0 {
        let var = (0..n)
            .map(|j| {
                let d = inst.time(j) as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n as f64;
        (var.sqrt() / mean * 100.0).min(u64::MAX as f64) as u64
    } else {
        0
    }
}

/// One probe's feasibility plus the configs needed to build a schedule.
struct ProbeOutcome {
    feasible: bool,
    configs: Option<Arc<Vec<Vec<usize>>>>,
}

/// Plans the representation for one problem under the options' policy.
/// `Err` when every admitted representation exceeds the cell budget —
/// checked *before* the cache so admission control is representation-
/// aware even on the hit path.
fn plan_repr(problem: &DpProblem, opts: &SolverOptions) -> Result<PlannedRepr, Degrade> {
    let prediction = problem.predict_sparse();
    match opts.repr {
        ReprPolicy::DenseOnly => {
            if problem.table_size() > opts.max_table_cells {
                Err(Degrade::TableTooLarge {
                    cells: problem.table_size(),
                })
            } else {
                Ok(PlannedRepr::Dense)
            }
        }
        ReprPolicy::SparseOnly => {
            if prediction.est_sparse_cells > opts.max_table_cells as u64 {
                Err(Degrade::TableTooLarge {
                    cells: prediction.est_sparse_cells.min(usize::MAX as u64) as usize,
                })
            } else {
                Ok(PlannedRepr::Sparse)
            }
        }
        ReprPolicy::Auto => prediction
            .choose(opts.max_table_cells as u64, opts.pages_dir.is_some())
            .ok_or(Degrade::TableTooLarge {
                cells: prediction.min_predicted_cells().min(usize::MAX as u64) as usize,
            }),
    }
}

/// Runs the DP under the planned representation, returning the cache
/// entry and the representation that actually produced it (the sparse
/// arm falls back to paged when the frontier overflows its cell cap and
/// a pages directory exists).
fn run_planned(
    problem: &DpProblem,
    planned: PlannedRepr,
    opts: &SolverOptions,
) -> Result<(CachedDp, PlannedRepr), Degrade> {
    match planned {
        PlannedRepr::Dense => {
            let sol = problem.solve(opts.engine);
            let configs = problem.extract_configs(&sol.values).map(Arc::new);
            Ok((
                CachedDp {
                    opt: sol.opt,
                    configs,
                },
                PlannedRepr::Dense,
            ))
        }
        PlannedRepr::Sparse => match problem.solve_sparse_bounded(opts.max_table_cells) {
            Ok(sol) => {
                let configs = sol.extract_configs().map(Arc::new);
                Ok((
                    CachedDp {
                        opt: sol.opt,
                        configs,
                    },
                    PlannedRepr::Sparse,
                ))
            }
            // The prediction under-estimated the frontier: page the dense
            // table if we can, otherwise degrade at the true resident size.
            Err(SparseError::FrontierOverflow { resident, .. }) => {
                if opts.pages_dir.is_some() {
                    run_planned(problem, PlannedRepr::Paged, opts)
                } else {
                    Err(Degrade::TableTooLarge { cells: resident })
                }
            }
        },
        PlannedRepr::Paged => {
            let entry = solve_paged_fresh(problem, opts).ok_or(Degrade::TableTooLarge {
                cells: problem.table_size(),
            })?;
            Ok((entry, PlannedRepr::Paged))
        }
    }
}

/// One paged solve against a *fresh* tiered store in a unique
/// subdirectory (page ids are table-relative, so stores must never be
/// shared across problems). A [`ScratchDir`] guard owns the directory:
/// it sweeps stale pages a crashed predecessor left behind and removes
/// the directory however the solve exits — success, store error, or
/// unwind — so aborted solves never orphan spill files. Any store error
/// collapses to `None` and the caller degrades. The sweep itself runs
/// overlapped: prefetch and write-behind streams move page I/O off the
/// compute path.
fn solve_paged_fresh(problem: &DpProblem, opts: &SolverOptions) -> Option<CachedDp> {
    static NEXT_PAGED_SOLVE: AtomicU64 = AtomicU64::new(0);
    let base = opts.pages_dir.as_ref()?;
    let dir = base.join(format!(
        "solve-{}-{}",
        std::process::id(),
        NEXT_PAGED_SOLVE.fetch_add(1, Ordering::Relaxed)
    ));
    let scratch = ScratchDir::create(&dir).ok()?;
    let dim_limit = match opts.engine {
        DpEngine::Blocked { dim_limit } => dim_limit,
        _ => 3,
    };
    let result = TieredStore::open(&StoreConfig {
        budget: opts.pages_budget,
        spill_dir: Some(scratch.path().to_path_buf()),
    })
    .and_then(|store| problem.solve_paged_overlapped(dim_limit, Arc::new(store)));
    drop(scratch);
    let sol = result.ok()?;
    let configs = problem.extract_configs(&sol.values).map(Arc::new);
    Some(CachedDp {
        opt: sol.opt,
        configs,
    })
}

/// Probes target `t` through the cache (RAM, then the optional warm
/// disk tier). `Err` only when every admitted representation is over
/// budget.
#[allow(clippy::too_many_arguments)]
fn probe_cached(
    inst: &Instance,
    t: u64,
    k: u64,
    opts: &SolverOptions,
    cache: &DpCache,
    warm: Option<&WarmTier>,
    hits: &mut u64,
    misses: &mut u64,
    repr: &mut ReprCounts,
) -> Result<ProbeOutcome, Degrade> {
    let rounding = match Rounding::compute(inst, t, k) {
        // A job longer than `t` cannot be scheduled at all under `t`.
        RoundingOutcome::Infeasible { .. } => {
            return Ok(ProbeOutcome {
                feasible: false,
                configs: None,
            })
        }
        RoundingOutcome::Rounded(r) => r,
    };
    let problem = DpProblem::from_rounding(&rounding);
    let planned = plan_repr(&problem, opts)?;
    let m = inst.machines();
    let key = problem.canonical_key();
    let entry = match cache.get(&key) {
        Some(entry) => {
            *hits += 1;
            entry
        }
        // RAM miss: fault the warm disk tier before running the DP. A
        // disk hit counts as a request-level hit (no DP ran) and is
        // promoted into RAM so the next probe stays off disk.
        None => match warm.and_then(|w| w.get(&key)) {
            Some(entry) => {
                *hits += 1;
                cache.insert(key.clone(), entry.clone(), entry_cost(&key, &entry));
                entry
            }
            None => {
                *misses += 1;
                let (entry, ran) = run_planned(&problem, planned, opts)?;
                repr.bump(ran);
                if let Some(w) = warm {
                    w.put(&key, &entry);
                }
                cache.insert(key.clone(), entry.clone(), entry_cost(&key, &entry));
                entry
            }
        },
    };
    Ok(ProbeOutcome {
        feasible: entry.opt != INFEASIBLE && entry.opt as usize <= m,
        configs: entry.configs.clone(),
    })
}

/// Bisects the target makespan with cache-backed probes, then assembles
/// the schedule for the converged target.
///
/// `deadline` is checked before every probe; expiry returns
/// [`Degrade::DeadlineExceeded`] and the caller falls back to a
/// heuristic. A `deadline` of `None` never expires.
pub fn solve_cached(
    inst: &Instance,
    k: u64,
    opts: &SolverOptions,
    cache: &DpCache,
    warm: Option<&WarmTier>,
    deadline: Option<Instant>,
) -> Result<SolveOutcome, Degrade> {
    let mut lb = bounds::lower_bound(inst);
    let mut ub = bounds::upper_bound(inst);
    let mut hits = 0u64;
    let mut misses = 0u64;
    let mut repr = ReprCounts::default();

    let expired = |now: Instant| deadline.is_some_and(|d| now >= d);

    // Invariant: `ub` is always probe-feasible (the initial upper bound
    // is an achieved LPT makespan, and rounding only shrinks loads).
    while lb < ub {
        if expired(Instant::now()) {
            return Err(Degrade::DeadlineExceeded);
        }
        // Overflow-safe midpoint (same fix as `search::interval`): the
        // plain sum wraps for u64-scale instances admitted by the gate.
        let t = lb + (ub - lb) / 2;
        let outcome = probe_cached(
            inst, t, k, opts, cache, warm, &mut hits, &mut misses, &mut repr,
        )?;
        if outcome.feasible {
            ub = t;
        } else {
            lb = t + 1;
        }
    }

    if expired(Instant::now()) {
        return Err(Degrade::DeadlineExceeded);
    }
    let target = ub;
    let final_probe = probe_cached(
        inst, target, k, opts, cache, warm, &mut hits, &mut misses, &mut repr,
    )?;
    let configs = final_probe
        .configs
        .expect("converged target is feasible, so configs exist");
    let rounding = match Rounding::compute(inst, target, k) {
        RoundingOutcome::Rounded(r) => r,
        RoundingOutcome::Infeasible { longest } => {
            unreachable!("converged target {target} below longest job {longest}")
        }
    };
    let schedule = assemble_schedule(inst, &rounding, &configs);
    Ok(SolveOutcome {
        schedule,
        target,
        machines_used: configs.len(),
        cache_hits: hits,
        cache_misses: misses,
        repr,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcmax_core::gen::uniform;
    use pcmax_ptas::Ptas;
    use std::time::Duration;

    fn k_of(eps: f64) -> u64 {
        (1.0 / eps).ceil() as u64
    }

    fn seq() -> SolverOptions {
        SolverOptions::new(DpEngine::Sequential)
    }

    #[test]
    fn matches_the_plain_ptas() {
        let cache = DpCache::new(4, 64 << 10);
        for seed in 0..4 {
            let inst = uniform(seed, 24, 3, 1, 50);
            let cached = solve_cached(&inst, k_of(0.3), &seq(), &cache, None, None).unwrap();
            let plain = Ptas::new(0.3)
                .with_engine(DpEngine::Sequential)
                .solve(&inst);
            assert_eq!(cached.target, plain.target, "seed {seed}");
            let ms = cached.schedule.validate(&inst).unwrap();
            assert_eq!(ms, cached.schedule.makespan(&inst));
            // Both schedules honour the same (1+ε) bound; they need not
            // be identical, but the cached path must not be worse than
            // the plain PTAS's own guarantee envelope.
            assert!(ms as f64 <= plain.makespan as f64 * 1.5 + 1.0);
        }
    }

    #[test]
    fn repeat_solves_hit_the_cache() {
        let cache = DpCache::new(4, 64 << 10);
        let inst = uniform(9, 24, 3, 1, 50);
        let first = solve_cached(&inst, k_of(0.3), &seq(), &cache, None, None).unwrap();
        let second = solve_cached(&inst, k_of(0.3), &seq(), &cache, None, None).unwrap();
        assert_eq!(first.target, second.target);
        assert_eq!(second.cache_misses, 0, "second run must be all hits");
        assert!(second.cache_hits > 0);
        assert_eq!(second.repr.total(), 0, "cache hits run no DP");
        assert_eq!(first.repr.total(), first.cache_misses);
        assert!(cache.bytes() > 0, "entries carry a byte cost");
    }

    #[test]
    fn warm_tier_answers_after_the_ram_cache_is_dropped() {
        let dir = std::env::temp_dir().join(format!(
            "pcmax-solver-warm-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let warm = WarmTier::open(&dir).unwrap();
        let inst = uniform(11, 24, 3, 1, 50);
        let cold_cache = DpCache::new(4, 64 << 10);
        let cold = solve_cached(&inst, k_of(0.3), &seq(), &cold_cache, Some(&warm), None).unwrap();
        assert!(cold.cache_misses > 0);
        assert!(warm.appends() > 0, "misses must persist to the warm tier");
        // Fresh RAM cache, same warm dir reopened: every probe faults the
        // disk tier, none runs the DP.
        let reopened = WarmTier::open(&dir).unwrap();
        assert_eq!(reopened.rehydrated(), warm.appends());
        let fresh_cache = DpCache::new(4, 64 << 10);
        let rehydrated =
            solve_cached(&inst, k_of(0.3), &seq(), &fresh_cache, Some(&reopened), None).unwrap();
        assert_eq!(rehydrated.target, cold.target);
        assert_eq!(rehydrated.cache_misses, 0, "no DP may run after rehydration");
        assert!(reopened.hits() > 0, "probes must be answered from disk");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cache_reuse_across_machine_counts() {
        // Same jobs, different m: rounded problems share keys, so the
        // second solve should run strictly fewer DPs than a cold one.
        let cache = DpCache::new(4, 64 << 10);
        let times: Vec<u64> = uniform(3, 24, 3, 1, 50).times().to_vec();
        let a = Instance::new(times.clone(), 3);
        let b = Instance::new(times, 4);
        let first = solve_cached(&a, 4, &seq(), &cache, None, None).unwrap();
        let second = solve_cached(&b, 4, &seq(), &cache, None, None).unwrap();
        assert!(first.cache_misses > 0);
        assert!(
            second.cache_hits > 0,
            "shared keys across m must produce hits"
        );
    }

    #[test]
    fn expired_deadline_degrades() {
        let cache = DpCache::new(4, 64 << 10);
        let inst = uniform(1, 24, 3, 1, 50);
        let already_past = Instant::now() - Duration::from_millis(1);
        let err = solve_cached(&inst, 4, &seq(), &cache, None, Some(already_past)).unwrap_err();
        assert_eq!(err, Degrade::DeadlineExceeded);
    }

    #[test]
    fn oversized_tables_degrade() {
        let cache = DpCache::new(4, 64 << 10);
        // Few machines, jobs near the target: everything is long, so the
        // DP table has many class dimensions and cannot fit in 8 cells —
        // not even as a sparse frontier, whose floor is one cell per job.
        let inst = uniform(2, 12, 6, 50, 100);
        let opts = SolverOptions {
            max_table_cells: 8,
            ..seq()
        };
        let err = solve_cached(&inst, 6, &opts, &cache, None, None).unwrap_err();
        assert!(matches!(err, Degrade::TableTooLarge { cells } if cells > 8));
        // The pre-sparsification policy degrades identically.
        let dense_opts = SolverOptions {
            repr: ReprPolicy::DenseOnly,
            ..opts
        };
        let err = solve_cached(&inst, 6, &dense_opts, &cache, None, None).unwrap_err();
        assert!(matches!(err, Degrade::TableTooLarge { cells } if cells > 8));
    }

    #[test]
    fn sparse_only_matches_dense_only_answers() {
        let dense_cache = DpCache::new(4, 64 << 10);
        let sparse_cache = DpCache::new(4, 64 << 10);
        let sparse_opts = SolverOptions {
            repr: ReprPolicy::SparseOnly,
            ..seq()
        };
        for seed in 0..4 {
            let inst = uniform(seed, 24, 3, 1, 50);
            let dense = solve_cached(&inst, 4, &seq(), &dense_cache, None, None).unwrap();
            let sparse = solve_cached(&inst, 4, &sparse_opts, &sparse_cache, None, None).unwrap();
            assert_eq!(dense.target, sparse.target, "seed {seed}");
            assert_eq!(dense.machines_used, sparse.machines_used, "seed {seed}");
            let ms = sparse.schedule.validate(&inst).unwrap();
            assert_eq!(ms, sparse.schedule.makespan(&inst));
            assert!(sparse.repr.sparse > 0, "sparse probes must be counted");
            assert_eq!(sparse.repr.dense, 0);
        }
    }

    #[test]
    fn auto_switches_to_sparse_when_the_dense_table_is_over_budget() {
        // 24 long jobs of sizes {10, 11} on 4 machines with k=8: every
        // probe rounds to the class vector (12, 12) — a 169-cell dense
        // box whose sparse estimate ((M̂+2) surfaces of twice the mean
        // anti-diagonal width) is 98 cells. A budget between the two
        // forces the Auto ladder onto the sparse arm for every probe.
        let times: Vec<u64> = std::iter::repeat_n(10u64, 12)
            .chain(std::iter::repeat_n(11u64, 12))
            .collect();
        let inst = Instance::new(times, 4);
        let unbounded = solve_cached(&inst, 8, &seq(), &DpCache::new(4, 64 << 10), None, None)
            .unwrap();
        assert!(unbounded.repr.dense > 0);
        assert_eq!(unbounded.repr.sparse, 0);
        let opts = SolverOptions {
            max_table_cells: 120,
            ..seq()
        };
        let cache = DpCache::new(4, 64 << 10);
        let outcome = solve_cached(&inst, 8, &opts, &cache, None, None).unwrap();
        assert_eq!(outcome.target, unbounded.target);
        assert!(
            outcome.repr.sparse > 0,
            "a 120-cell budget must push probes sparse: {:?}",
            outcome.repr
        );
        assert_eq!(outcome.repr.dense, 0, "no probe fits 120 cells dense");
        let ms = outcome.schedule.validate(&inst).unwrap();
        assert_eq!(ms, outcome.schedule.makespan(&inst));
    }

    #[test]
    fn features_probe_is_sane() {
        let inst = uniform(5, 24, 3, 1, 50);
        let f = probe_features(&inst, 4, &seq());
        assert_eq!((f.n, f.m, f.k), (24, 3, 4));
        assert!(f.lb <= f.ub);
        assert_eq!(f.planned, Some(PlannedRepr::Dense));
        assert!(f.dense_cells > 0);
        assert!(f.est_dp_us > 0);
        assert!(f.spread_pct > 0 && f.spread_pct <= 100);
        assert!(f.est_probes >= 1);

        // Uniform times: zero spread, zero CV.
        let flat = Instance::new(vec![7; 12], 3);
        let ff = probe_features(&flat, 4, &seq());
        assert_eq!(ff.spread_pct, 0);
        assert_eq!(ff.cv_pct, 0);

        // A 1-cell budget admits no representation: the DP arms are
        // reported unavailable and the cost estimate is zero.
        let tight = SolverOptions {
            max_table_cells: 1,
            ..seq()
        };
        let none = probe_features(&inst, 6, &tight);
        assert!(none.planned.is_none());
        assert_eq!(none.est_dp_us, 0);
    }

    #[test]
    fn auto_falls_back_to_paged_when_sparse_is_over_budget() {
        let dir = std::env::temp_dir().join(format!("pcmax-solver-pages-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let cache = DpCache::new(4, 64 << 10);
        // The oversized regime again, but now a pages directory exists:
        // instead of degrading, every over-budget probe pages its dense
        // table through a fresh tiered store and still answers exactly.
        let inst = uniform(2, 12, 6, 50, 100);
        let opts = SolverOptions {
            max_table_cells: 8,
            pages_dir: Some(dir.clone()),
            pages_budget: StoreBudget::bytes(1 << 10),
            ..seq()
        };
        let paged = solve_cached(&inst, 6, &opts, &cache, None, None).unwrap();
        assert!(paged.repr.paged > 0, "probes must page: {:?}", paged.repr);
        let reference = solve_cached(&inst, 6, &seq(), &DpCache::new(4, 64 << 10), None, None)
            .unwrap();
        assert_eq!(paged.target, reference.target);
        let ms = paged.schedule.validate(&inst).unwrap();
        assert_eq!(ms, paged.schedule.makespan(&inst));
        // Per-solve page directories are cleaned up afterwards.
        assert_eq!(
            std::fs::read_dir(&dir).unwrap().count(),
            0,
            "paged solves must remove their scratch directories"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
