//! In-process multi-worker harness: spins up N real [`Service`]s behind
//! real loopback TCP front-ends and a [`Coordinator`] routing over them.
//! Everything runs in one process, so integration tests (and
//! `pcmax bench-cluster`) can kill workers mid-load, join replacements,
//! and inspect each worker's service directly. The harness also
//! implements [`Lifecycle`], so the coordinator's elastic policy can
//! spawn and retire in-process workers.

use crate::coordinator::{ClusterConfig, Coordinator};
use crate::sync::Lifecycle;
use pcmax_serve::{serve_tcp, ServeConfig, Service, TcpHandle};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

struct LocalWorker {
    id: String,
    addr: SocketAddr,
    // Behind mutexes so `kill` works through a shared reference.
    service: Mutex<Option<Arc<Service>>>,
    tcp: Mutex<Option<TcpHandle>>,
}

/// The shareable worker set: the piece of the harness the coordinator
/// holds (as its [`Lifecycle`]) without owning the coordinator back.
struct LocalWorkers {
    list: Mutex<Vec<Arc<LocalWorker>>>,
    serve_config: ServeConfig,
    next_id: AtomicUsize,
}

impl LocalWorkers {
    /// Starts one worker: its own [`Service`] (with a per-worker store
    /// subdirectory, so a restart or replacement rehydrates exactly its
    /// own hot set) behind an ephemeral loopback TCP front-end.
    fn start_worker(&self, id: &str) -> std::io::Result<Arc<LocalWorker>> {
        // A shared store dir would have every worker appending to one
        // warm log; give each worker its own subdirectory.
        let mut config = self.serve_config.clone();
        if let Some(base) = &self.serve_config.store_dir {
            config.store_dir = Some(base.join(id));
        }
        let service = Service::start(config);
        let tcp = serve_tcp(Arc::clone(&service), "127.0.0.1:0")?;
        let worker = Arc::new(LocalWorker {
            id: id.to_string(),
            addr: tcp.local_addr(),
            service: Mutex::new(Some(service)),
            tcp: Mutex::new(Some(tcp)),
        });
        self.list.lock().expect("workers poisoned").push(Arc::clone(&worker));
        Ok(worker)
    }

    fn kill_worker(&self, worker: &LocalWorker) {
        let tcp = worker.tcp.lock().expect("tcp poisoned").take();
        if let Some(handle) = tcp {
            handle.shutdown();
        }
        let service = worker.service.lock().expect("service poisoned").take();
        if let Some(service) = service {
            service.shutdown();
        }
    }
}

impl Lifecycle for LocalWorkers {
    fn spawn_worker(&self) -> Option<(String, SocketAddr)> {
        let id = format!("worker-{}", self.next_id.fetch_add(1, Ordering::SeqCst));
        self.start_worker(&id).ok().map(|w| (w.id.clone(), w.addr))
    }

    fn retire_worker(&self, id: &str) {
        let worker = {
            let list = self.list.lock().expect("workers poisoned");
            list.iter().find(|w| w.id == id).cloned()
        };
        if let Some(worker) = worker {
            self.kill_worker(&worker);
        }
    }
}

/// N loopback `pcmax-serve` workers plus a coordinator routing over
/// them. Dropping the harness kills the workers and shuts the
/// coordinator down.
pub struct LocalCluster {
    inner: Arc<LocalWorkers>,
    coordinator: Arc<Coordinator>,
}

impl LocalCluster {
    /// Starts `n` workers (ids `worker-0` … `worker-{n-1}`), each its
    /// own [`Service`] with `serve_config` on an ephemeral loopback
    /// port, registers them, registers the harness as the coordinator's
    /// [`Lifecycle`], and starts the heartbeat.
    pub fn start(
        n: usize,
        serve_config: ServeConfig,
        cluster_config: ClusterConfig,
    ) -> std::io::Result<Self> {
        assert!(n > 0, "a cluster needs at least one worker");
        let coordinator = Coordinator::new(cluster_config);
        let inner = Arc::new(LocalWorkers {
            list: Mutex::new(Vec::new()),
            serve_config,
            next_id: AtomicUsize::new(n),
        });
        for i in 0..n {
            let id = format!("worker-{i}");
            let worker = inner.start_worker(&id)?;
            coordinator.add_worker(&id, worker.addr);
        }
        coordinator.set_lifecycle(Arc::clone(&inner) as Arc<dyn Lifecycle>);
        coordinator.start_heartbeat();
        Ok(Self { inner, coordinator })
    }

    /// The routing coordinator.
    pub fn coordinator(&self) -> &Arc<Coordinator> {
        &self.coordinator
    }

    /// Number of workers the harness started (killed ones included).
    pub fn len(&self) -> usize {
        self.inner.list.lock().expect("workers poisoned").len()
    }

    /// Whether the harness has no workers (never true — `start`
    /// requires at least one).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Worker ids, in start order.
    pub fn ids(&self) -> Vec<String> {
        self.inner
            .list
            .lock()
            .expect("workers poisoned")
            .iter()
            .map(|w| w.id.clone())
            .collect()
    }

    /// The TCP address worker `i` listens (or listened) on.
    pub fn addr(&self, i: usize) -> SocketAddr {
        self.inner.list.lock().expect("workers poisoned")[i].addr
    }

    /// Worker `i`'s in-process service, for white-box inspection
    /// (cache sizes, reports). `None` once killed.
    pub fn service(&self, i: usize) -> Option<Arc<Service>> {
        let worker = Arc::clone(&self.inner.list.lock().expect("workers poisoned")[i]);
        let service = worker.service.lock().expect("service poisoned").clone();
        service
    }

    /// Index of the worker with `id`, if the harness started one.
    pub fn index_of(&self, id: &str) -> Option<usize> {
        self.inner
            .list
            .lock()
            .expect("workers poisoned")
            .iter()
            .position(|w| w.id == id)
    }

    /// Starts one more worker and registers it with the coordinator —
    /// a live join, as the elastic spawn path would do it. Returns the
    /// new worker's id. The next warmsync round relays the keys the
    /// joiner now owns, so its first warm-key request is served from
    /// shipped state.
    pub fn spawn(&self) -> std::io::Result<String> {
        let id = format!("worker-{}", self.inner.next_id.fetch_add(1, Ordering::SeqCst));
        let worker = self.inner.start_worker(&id)?;
        self.coordinator.add_worker(&id, worker.addr);
        Ok(id)
    }

    /// Kills worker `i`: stops its TCP front-end and shuts its service
    /// down. The worker stays *registered* — the coordinator discovers
    /// the death through transport errors and heartbeats, exactly as it
    /// would a remote crash. Idempotent.
    pub fn kill(&self, i: usize) {
        let worker = Arc::clone(&self.inner.list.lock().expect("workers poisoned")[i]);
        self.inner.kill_worker(&worker);
    }
}

impl Drop for LocalCluster {
    fn drop(&mut self) {
        for i in 0..self.len() {
            self.kill(i);
        }
        self.coordinator.shutdown();
    }
}
