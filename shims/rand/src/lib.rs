//! Offline shim for the `rand` crate.
//!
//! Provides the slice of the rand 0.8 API this workspace uses: the
//! [`Rng`]/[`SeedableRng`] traits, integer-range `gen_range`, and a
//! deterministic [`rngs::SmallRng`] (splitmix64 seeding + xorshift64*
//! stream). The value stream differs from the real `SmallRng`, so seeds
//! produce different — but still deterministic and well-spread —
//! instances. Nothing in the workspace pins exact generated values.

/// Raw 64-bit generator, the base trait of every RNG here.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit output (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, deterministic across runs.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from an integer range (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli sample with success probability `numerator/denominator`,
    /// computed exactly in integers.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool
    where
        Self: Sized,
    {
        assert!(
            numerator <= denominator && denominator > 0,
            "invalid ratio {numerator}/{denominator}"
        );
        self.gen_range(0..denominator) < numerator
    }

    /// Bernoulli sample with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        // 53 random mantissa bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that [`Rng::gen_range`] can sample values of type `T` from.
///
/// Blanket-implemented over [`SampleUniform`] element types, as in real
/// rand, so the compiler can infer untyped integer literals in the range
/// from `gen_range`'s return type.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Integer types uniformly sampleable from a range.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[lo, hi)`. Panics if empty.
    fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform sample from `[lo, hi]`. Panics if empty.
    fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

/// Uniform `u64` in `[lo, hi]` by widening multiply-free modulo. The
/// modulo bias is ≤ span/2⁶⁴ — irrelevant for test-instance generation.
fn sample_inclusive_u64<R: RngCore>(rng: &mut R, lo: u64, hi: u64) -> u64 {
    debug_assert!(lo <= hi);
    let span = hi.wrapping_sub(lo).wrapping_add(1); // 0 means the full 2⁶⁴ range
    if span == 0 {
        rng.next_u64()
    } else {
        lo + rng.next_u64() % span
    }
}

macro_rules! impl_unsigned_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                sample_inclusive_u64(rng, lo as u64, hi as u64 - 1) as $t
            }
            fn sample_inclusive<R: RngCore>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                sample_inclusive_u64(rng, lo as u64, hi as u64) as $t
            }
        }
    )*};
}

impl_unsigned_uniform!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + sample_inclusive_u64(rng, 0, span - 1) as i128) as $t
            }
            fn sample_inclusive<R: RngCore>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + sample_inclusive_u64(rng, 0, span) as i128) as $t
            }
        }
    )*};
}

impl_signed_uniform!(i8, i16, i32, i64, isize);

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Small, fast, deterministic generator: splitmix64-seeded
    /// xorshift64*. Not the real rand `SmallRng` stream, but an equally
    /// well-distributed stand-in.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 scrambles low-entropy seeds (0, 1, 2, …) into
            // well-spread nonzero states, as rand does internally.
            let mut z = seed.wrapping_add(0x9E3779B97F4A7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            Self {
                state: if z == 0 { 0x9E3779B97F4A7C15 } else { z },
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift64*: nonzero state cycles through all 2⁶⁴−1 values.
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..=1000), b.gen_range(0u64..=1000));
        }
        let mut c = SmallRng::seed_from_u64(43);
        let same: Vec<u64> = (0..20).map(|_| c.gen_range(0u64..=u64::MAX)).collect();
        let mut c2 = SmallRng::seed_from_u64(43);
        let again: Vec<u64> = (0..20).map(|_| c2.gen_range(0u64..=u64::MAX)).collect();
        assert_eq!(same, again);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..=20);
            assert!((10..=20).contains(&v));
            let w = rng.gen_range(5usize..8);
            assert!((5..8).contains(&w));
            let s = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&s));
        }
    }

    #[test]
    fn singleton_range_is_constant() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(rng.gen_range(9u64..=9), 9);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = rng.gen_range(5u64..5);
    }

    #[test]
    fn values_spread_across_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }
}
