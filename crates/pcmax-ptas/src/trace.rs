//! Span-tree construction for `pcmax trace`.
//!
//! Turns the telemetry a PTAS run already records ([`SearchResult`],
//! [`ProbeRecord`], [`DpStats`]) into a [`pcmax_obs::SpanNode`] tree that
//! attributes wall time to bisection rounds, probes, the rounding step,
//! and individual DP levels. Elapsed times are only non-zero when
//! `pcmax_obs` recording was enabled during the solve — callers
//! (`pcmax trace`) flip [`pcmax_obs::set_enabled`] before solving.

use crate::dp::DpStats;
use crate::ptas::PtasResult;
use crate::search::{ProbeRecord, SearchResult};
use pcmax_obs::SpanNode;

/// Span tree of one DP sweep: a `dp.sweep` node with one `dp.level`
/// child per recorded level.
pub fn dp_span(stats: &DpStats) -> SpanNode {
    let mut node = SpanNode::new("dp.sweep", stats.elapsed_us)
        .attr("cells", stats.table_size)
        .attr("configs", stats.configs_enumerated);
    if stats.num_blocks > 1 {
        node = node
            .attr("blocks", stats.num_blocks)
            .attr("block_levels", stats.num_block_levels);
    }
    for (i, level) in stats.levels.iter().enumerate() {
        node.push(
            SpanNode::new("dp.level", level.elapsed_us)
                .attr("level", i)
                .attr("cells", level.cells)
                .attr("configs", level.configs),
        );
    }
    node
}

/// Span tree of one probe: `search.probe` with `rounding` and (for
/// uncached probes that reached the DP) `dp.sweep` children.
pub fn probe_span(probe: &ProbeRecord) -> SpanNode {
    let mut node = SpanNode::new(
        "search.probe",
        probe.rounding_us + probe.dp_stats.elapsed_us,
    )
    .attr("target", probe.target)
    .attr("feasible", probe.feasible);
    if probe.cached {
        node = node.attr("cached", true);
        return node;
    }
    node.push(SpanNode::new("rounding", probe.rounding_us).attr("ndim", probe.ndim));
    if probe.opt.is_some() {
        node.push(dp_span(&probe.dp_stats));
    }
    node
}

/// Span tree of a whole search: `search` → one `search.round` per
/// iteration → probes.
pub fn search_span(search: &SearchResult) -> SpanNode {
    let mut rounds = Vec::with_capacity(search.records.len());
    let mut total_us = 0u64;
    for rec in &search.records {
        let probes: Vec<SpanNode> = rec.probes.iter().map(probe_span).collect();
        let round_us: u64 = probes.iter().map(|p| p.elapsed_us).sum();
        total_us += round_us;
        let mut round = SpanNode::new("search.round", round_us)
            .attr("interval", format!("[{},{}]", rec.lb, rec.ub));
        round.children = probes;
        rounds.push(round);
    }
    let mut node = SpanNode::new("search", total_us)
        .attr("target", search.target)
        .attr("rounds", search.iterations)
        .attr("dp_runs", search.dp_runs)
        .attr("cache_hits", search.cache_hits);
    node.children = rounds;
    node
}

/// Span tree of a full PTAS run: `ptas.solve` → `search` +
/// `build_schedule`. `total_us` is the caller-measured wall time of the
/// whole solve (the tree's internal spans only cover the instrumented
/// regions, so the root carries the authoritative total).
pub fn solve_span(result: &PtasResult, total_us: u64) -> SpanNode {
    let mut node = SpanNode::new("ptas.solve", total_us)
        .attr("makespan", result.makespan)
        .attr("target", result.target)
        .attr("machines_used", result.machines_used);
    node.push(search_span(&result.search));
    node.push(SpanNode::new("build_schedule", result.build_us));
    node
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::DpEngine;
    use crate::ptas::Ptas;
    use pcmax_core::gen::uniform;

    #[test]
    fn tree_covers_every_probe_without_recording() {
        // Recording stays off: elapsed times are 0 but the structure must
        // still mirror the search telemetry exactly.
        let inst = uniform(42, 15, 3, 5, 40);
        let res = Ptas::new(0.3)
            .with_engine(DpEngine::Sequential)
            .solve(&inst);
        let tree = solve_span(&res, 0);
        assert_eq!(tree.name, "ptas.solve");
        assert_eq!(tree.children.len(), 2);
        let search = &tree.children[0];
        assert_eq!(search.children.len(), res.search.records.len());
        let probes_in_tree: usize = search.children.iter().map(|r| r.children.len()).sum();
        let probes_in_search: usize = res.search.records.iter().map(|r| r.probes.len()).sum();
        assert_eq!(probes_in_tree, probes_in_search);
        // Renders without panicking and shows the root line.
        assert!(tree.render().starts_with("ptas.solve"));
    }

    #[test]
    fn cached_probes_are_leaves() {
        let probe = ProbeRecord {
            target: 10,
            feasible: true,
            opt: Some(2),
            table_size: 9,
            ndim: 2,
            cached: true,
            rounding_us: 0,
            dp_stats: DpStats::default(),
        };
        let span = probe_span(&probe);
        assert!(span.children.is_empty());
        assert!(span.attrs.iter().any(|(k, _)| k == "cached"));
    }

    #[test]
    fn dp_span_lists_levels() {
        let stats = DpStats {
            table_size: 9,
            num_levels: 3,
            configs_enumerated: 12,
            num_blocks: 1,
            num_block_levels: 1,
            elapsed_us: 30,
            levels: vec![
                crate::dp::DpLevelStat {
                    cells: 1,
                    configs: 0,
                    elapsed_us: 1,
                },
                crate::dp::DpLevelStat {
                    cells: 2,
                    configs: 12,
                    elapsed_us: 29,
                },
            ],
        };
        let span = dp_span(&stats);
        assert_eq!(span.children.len(), 2);
        assert_eq!(span.children[1].elapsed_us, 29);
    }
}
