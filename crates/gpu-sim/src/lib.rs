#![warn(missing_docs)]

//! A deterministic discrete-event GPU simulator.
//!
//! This crate stands in for the paper's Nvidia K40: it executes *kernel
//! descriptions* — warps with counted compute cycles and analysed memory
//! transactions — on a device model with streaming multiprocessors,
//! Hyper-Q multi-stream concurrency, kernel-launch and dynamic-parallelism
//! overheads. The output is a modeled timeline, not wall-clock time, so
//! results are exactly reproducible on any host.
//!
//! What is modeled, and why it is enough for the paper's claims:
//!
//! * **Warps** ([`warp`]): 32-thread SIMT groups. A warp's duration is the
//!   *maximum* over its threads (lockstep execution), which is precisely
//!   the thread-level workload-imbalance effect §III.B discusses.
//! * **Memory coalescing** ([`mem`]): per lockstep access slot, the warp
//!   pays one transaction per distinct cache line touched. Strided access
//!   across a row-major table → up to 32 transactions; block-local access
//!   after the data-partitioning reorganisation → few. This is the bus-
//!   utilisation effect §III.C targets.
//! * **SM occupancy** ([`engine`]): the device offers
//!   `num_sms · cores_per_sm / warp_size` concurrent warp slots;
//!   kernels progress by processor sharing over those slots with a
//!   critical-path floor (Brent-style), so under-filled launches waste
//!   throughput exactly as on real silicon.
//! * **Streams / Hyper-Q** ([`engine`]): kernels in one stream serialise;
//!   kernels in different streams share the device, up to
//!   `max_concurrent_kernels`.
//! * **Dynamic parallelism** ([`kernel`]): device-side child launches are
//!   charged a per-launch overhead on the parent's critical path, the
//!   dominant real-world cost of the nested `FindValidSub`/`SetOPT`
//!   pattern of Algorithm 5.
//!
//! Not modeled: caches beyond the coalescing granularity, shared memory,
//! register pressure, ECC. Those affect absolute times (out of scope) but
//! not the orderings the paper reports.

pub mod engine;
pub mod kernel;
pub mod mem;
pub mod metrics;
pub mod spec;
pub mod timeline;
pub mod trace;
pub mod warp;

pub use engine::{GpuSim, SharePolicy};
pub use kernel::KernelDesc;
pub use metrics::{KernelRecord, SimReport};
pub use spec::DeviceSpec;
pub use warp::{WarpBuilder, WarpDesc};
