//! Deterministic random knapsack generators.

use crate::problem::{Item, KnapsackProblem};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Uncorrelated instance: profits and weights independently uniform.
/// Capacities are set to roughly half the total weight per dimension,
/// the standard "hard middle" regime.
pub fn uncorrelated(seed: u64, n: usize, d: usize, max_weight: usize) -> KnapsackProblem {
    assert!(n > 0 && d > 0 && max_weight > 0);
    let mut rng = SmallRng::seed_from_u64(seed);
    let items: Vec<Item> = (0..n)
        .map(|_| Item {
            profit: rng.gen_range(1..=100),
            weights: (0..d).map(|_| rng.gen_range(0..=max_weight)).collect(),
        })
        .collect();
    let capacities = (0..d)
        .map(|dim| {
            let total: usize = items.iter().map(|it| it.weights[dim]).sum();
            (total / 2).max(1)
        })
        .collect();
    KnapsackProblem::new(capacities, items)
}

/// Profit-correlated instance: profit ≈ sum of weights + noise, the
/// classically harder family (greedy-by-density is near-useless).
pub fn correlated(seed: u64, n: usize, d: usize, max_weight: usize) -> KnapsackProblem {
    assert!(n > 0 && d > 0 && max_weight > 0);
    let mut rng = SmallRng::seed_from_u64(seed);
    let items: Vec<Item> = (0..n)
        .map(|_| {
            let weights: Vec<usize> = (0..d).map(|_| rng.gen_range(0..=max_weight)).collect();
            let base: usize = weights.iter().sum();
            Item {
                profit: base as u64 + rng.gen_range(1..=10),
                weights,
            }
        })
        .collect();
    let capacities = (0..d)
        .map(|dim| {
            let total: usize = items.iter().map(|it| it.weights[dim]).sum();
            (total / 2).max(1)
        })
        .collect();
    KnapsackProblem::new(capacities, items)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(uncorrelated(3, 10, 2, 8), uncorrelated(3, 10, 2, 8));
        assert_ne!(uncorrelated(3, 10, 2, 8), uncorrelated(4, 10, 2, 8));
    }

    #[test]
    fn shapes_and_ranges() {
        let p = uncorrelated(1, 12, 3, 6);
        assert_eq!(p.num_items(), 12);
        assert_eq!(p.ndim(), 3);
        for item in p.items() {
            assert!(item.weights.iter().all(|&w| w <= 6));
            assert!((1..=100).contains(&item.profit));
        }
    }

    #[test]
    fn correlated_profits_track_weights() {
        let p = correlated(2, 20, 2, 10);
        for item in p.items() {
            let wsum: usize = item.weights.iter().sum();
            assert!(item.profit > wsum as u64);
            assert!(item.profit <= wsum as u64 + 10);
        }
    }
}
