//! The three DP engines side by side on one table, plus wall-clock
//! timing of the real Rust implementations (not the device models):
//! sequential sweep, rayon anti-diagonal wavefront, and the
//! block-partitioned sweep of the paper's data-partitioning scheme.
//!
//! Run with: `cargo run --release --example dp_engines`

use pcmax::gpu::synth::problem_with_extents;
use pcmax::{DpEngine, INFEASIBLE};
use std::time::Instant;

fn main() {
    // A mid-size paper shape: Table III's 12960-cell table.
    let problem = problem_with_extents(&[3, 16, 15, 18], 4);
    println!(
        "DP table: extents {:?}, σ = {}, capacity {}",
        problem.shape().extents(),
        problem.table_size(),
        problem.cap()
    );

    let engines = [
        ("sequential", DpEngine::Sequential),
        ("anti-diagonal (rayon)", DpEngine::AntiDiagonal),
        ("blocked DIM3", DpEngine::Blocked { dim_limit: 3 }),
        ("blocked DIM6", DpEngine::Blocked { dim_limit: 6 }),
        ("blocked DIM9", DpEngine::Blocked { dim_limit: 9 }),
    ];

    let mut reference: Option<Vec<u32>> = None;
    for (name, engine) in engines {
        let t0 = Instant::now();
        let sol = problem.solve(engine);
        let dt = t0.elapsed();
        assert_ne!(sol.opt, INFEASIBLE);
        match &reference {
            None => reference = Some(sol.values.clone()),
            Some(r) => assert_eq!(r, &sol.values, "engines must agree cell-for-cell"),
        }
        println!(
            "{name:<22} OPT(N) = {:>3}  {:>9.2?}  ({} configs enumerated, {} blocks, {} block-levels)",
            sol.opt,
            dt,
            sol.stats.configs_enumerated,
            sol.stats.num_blocks,
            sol.stats.num_block_levels
        );
    }
    println!("\nall engines agreed on every one of the {} cells", problem.table_size());
}
