//! Global-memory transaction analysis (coalescing).
//!
//! A warp executes memory instructions in lockstep: at access slot `j`,
//! every thread that still has a `j`-th access issues it, and the hardware
//! serves the set with one transaction per distinct cache line. Perfectly
//! coalesced access (32 consecutive words) costs 1 transaction; a strided
//! walk across a huge row-major table costs up to 32 — the paper's §III.B
//! "the warp reads data from the memory in a sequential manner".

/// Number of transactions to serve one lockstep access slot: distinct
/// cache lines among the participating addresses (byte addresses).
pub fn slot_transactions(addresses: &[u64], cacheline_bytes: usize) -> u64 {
    debug_assert!(cacheline_bytes.is_power_of_two());
    let shift = cacheline_bytes.trailing_zeros();
    let mut lines: Vec<u64> = addresses.iter().map(|&a| a >> shift).collect();
    lines.sort_unstable();
    lines.dedup();
    lines.len() as u64
}

/// Transactions for a whole warp given each thread's address list.
/// Threads advance in lockstep; slot `j` gathers the `j`-th address of
/// every thread that has one.
pub fn warp_transactions(per_thread: &[Vec<u64>], cacheline_bytes: usize) -> u64 {
    let max_len = per_thread.iter().map(Vec::len).max().unwrap_or(0);
    let mut total = 0u64;
    let mut slot = Vec::with_capacity(per_thread.len());
    for j in 0..max_len {
        slot.clear();
        for t in per_thread {
            if let Some(&a) = t.get(j) {
                slot.push(a);
            }
        }
        total += slot_transactions(&slot, cacheline_bytes);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesced_words_cost_one_transaction() {
        // 32 consecutive 4-byte words inside one 128 B line.
        let addrs: Vec<u64> = (0..32).map(|i| i * 4).collect();
        assert_eq!(slot_transactions(&addrs, 128), 1);
    }

    #[test]
    fn strided_access_costs_one_per_thread() {
        // Stride of 1 KiB: every address on its own line.
        let addrs: Vec<u64> = (0..32).map(|i| i * 1024).collect();
        assert_eq!(slot_transactions(&addrs, 128), 32);
    }

    #[test]
    fn duplicate_addresses_collapse() {
        let addrs = vec![0u64, 0, 4, 8, 127, 128];
        assert_eq!(slot_transactions(&addrs, 128), 2);
    }

    #[test]
    fn empty_slot_is_free() {
        assert_eq!(slot_transactions(&[], 128), 0);
    }

    #[test]
    fn lockstep_slots_are_independent() {
        // Two threads, two accesses each: slot 0 coalesces, slot 1 splits.
        let per_thread = vec![vec![0u64, 0], vec![4u64, 4096]];
        assert_eq!(warp_transactions(&per_thread, 128), 1 + 2);
    }

    #[test]
    fn ragged_threads_lockstep() {
        // Thread 0 has 3 accesses, thread 1 has 1: slots 1 and 2 are
        // thread-0-only.
        let per_thread = vec![vec![0u64, 1024, 2048], vec![64u64]];
        assert_eq!(warp_transactions(&per_thread, 128), 1 + 1 + 1);
    }
}
