//! The straw-man: a direct GPU translation of the OpenMP code.
//!
//! §III of the paper: "a direct GPU translation of the OpenMP
//! implementation is about a hundred times slower than the OpenMP
//! implementation". The translation keeps every pathology of Algorithm 2
//! when dropped onto a GPU:
//!
//! * one kernel per *global* anti-diagonal level launching `σ` threads —
//!   every table cell gets a thread which first checks `dᵢ = l`
//!   (line 12), so almost all threads are idle ballast;
//! * each active thread screens its candidate sub-configurations
//!   *sequentially* (no nested parallelism);
//! * each dependency value is located by scanning the whole row-major
//!   table (lines 18–19); the scan's scattered 4-byte reads miss the
//!   coalescer completely, so we charge one transaction per scanned cell;
//! * a device-wide synchronisation between levels.

use crate::analysis::TableAnalysis;
use gpu_sim::{DeviceSpec, GpuSim, KernelDesc, SimReport, WarpDesc};
use pcmax_ptas::DpProblem;

/// Simulates the naive port of `problem` on `spec`. Uses the default
/// stream only (the translation has no stream awareness).
pub fn simulate_naive(
    problem: &DpProblem,
    analysis: &TableAnalysis,
    spec: &DeviceSpec,
) -> SimReport {
    let sigma = problem.table_size() as u64;
    let ndim = problem.shape().ndim() as u64;
    let mut sim = GpuSim::new(spec.clone(), 1);

    for (l, cells) in analysis.levels().iter().enumerate() {
        let mut kernel = KernelDesc::new(format!("NaiveLevel[{l}]"), Vec::new());
        // Active cells, chunked into warps in flat order.
        for chunk in cells.chunks(spec.warp_size) {
            let mut compute = 0u64;
            let mut transactions = 0u64;
            let mut accesses = 0u64;
            for &flat in chunk {
                // Sequential screening of every candidate (weight test is
                // ndim adds/compares), then a whole-table scan per
                // dependency; scattered 4-byte reads ⇒ one transaction
                // per scanned cell.
                let scan_cells = (sigma / 2).max(1);
                let ops = analysis.candidates(flat) * ndim;
                let deps = analysis.deps(flat).len() as u64;
                compute = compute.max(ops);
                transactions += deps * scan_cells;
                accesses += deps * scan_cells;
            }
            kernel.warps.push(WarpDesc {
                active_threads: chunk.len(),
                compute_cycles: compute,
                transactions,
                accesses,
            });
        }
        // Idle ballast: the σ − |level| threads that fail the dᵢ = l test.
        let idle = sigma - cells.len() as u64;
        kernel.add_group(
            idle.div_ceil(spec.warp_size as u64),
            WarpDesc {
                active_threads: spec.warp_size,
                compute_cycles: 4,
                transactions: 0,
                accesses: 0,
            },
        );
        sim.launch(0, kernel.with_sync_points(1));
    }
    sim.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioned::{simulate_partitioned, PartitionOptions};
    use crate::synth::problem_with_extents;

    #[test]
    fn naive_runs_and_reports_kernels_per_level() {
        let p = problem_with_extents(&[4, 4, 3], 4);
        let a = TableAnalysis::analyze(&p);
        let r = simulate_naive(&p, &a, &DeviceSpec::k40());
        assert_eq!(r.kernels.len(), p.shape().max_level() + 1);
        assert!(r.total_ns > 0.0);
    }

    #[test]
    fn naive_is_much_slower_than_partitioned_and_gap_widens() {
        // The §III claim: the direct port is far slower, and its
        // whole-table scans make the gap grow with table size.
        let spec = DeviceSpec::k40();
        let ratio = |extents: &[usize]| {
            let p = problem_with_extents(extents, 4);
            let a = TableAnalysis::analyze(&p);
            let naive = simulate_naive(&p, &a, &spec);
            let part = simulate_partitioned(&p, &a, &spec, &PartitionOptions::default());
            naive.total_ns / part.report.total_ns
        };
        let small = ratio(&[6, 4, 6, 6, 4]); // σ = 3456
        let large = ratio(&[5, 3, 6, 3, 4, 4, 2]); // σ = 8640
        assert!(small > 5.0, "σ=3456 ratio {small}");
        assert!(large > small, "gap must widen: {large} vs {small}");
    }

    #[test]
    fn naive_bus_utilisation_is_terrible() {
        let p = problem_with_extents(&[4, 4, 4, 4], 4);
        let a = TableAnalysis::analyze(&p);
        let r = simulate_naive(&p, &a, &DeviceSpec::k40());
        // One transaction per access: utilisation pinned at 1/32.
        assert!(r.bus_utilisation() <= 1.0 / 32.0 + 1e-9);
    }
}
