//! Schedules (job → machine assignments) and their evaluation.

use crate::instance::Instance;
use serde::{Deserialize, Serialize};

/// A complete assignment of jobs to machines.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    /// `machine_of[j]` is the machine executing job `j`.
    machine_of: Vec<usize>,
    machines: usize,
}

impl Schedule {
    /// Builds a schedule from an explicit assignment vector.
    ///
    /// # Panics
    ///
    /// Panics if any machine index is out of range.
    pub fn new(machine_of: Vec<usize>, machines: usize) -> Self {
        assert!(
            machine_of.iter().all(|&m| m < machines),
            "machine index out of range"
        );
        Self {
            machine_of,
            machines,
        }
    }

    /// Number of jobs covered by the schedule.
    #[inline]
    pub fn num_jobs(&self) -> usize {
        self.machine_of.len()
    }

    #[inline]
    /// Number of machines the schedule targets.
    pub fn machines(&self) -> usize {
        self.machines
    }

    /// Machine executing job `j`.
    #[inline]
    pub fn machine_of(&self, job: usize) -> usize {
        self.machine_of[job]
    }

    /// The assignment vector.
    #[inline]
    pub fn assignment(&self) -> &[usize] {
        &self.machine_of
    }

    /// Per-machine loads under `inst`.
    ///
    /// # Panics
    ///
    /// Panics if the schedule does not cover exactly the jobs of `inst`.
    pub fn loads(&self, inst: &Instance) -> Vec<u64> {
        assert_eq!(
            self.machine_of.len(),
            inst.num_jobs(),
            "schedule covers {} jobs, instance has {}",
            self.machine_of.len(),
            inst.num_jobs()
        );
        assert_eq!(self.machines, inst.machines(), "machine count mismatch");
        let mut loads = vec![0u64; self.machines];
        for (job, &m) in self.machine_of.iter().enumerate() {
            loads[m] += inst.time(job);
        }
        loads
    }

    /// Makespan: the maximum machine load.
    pub fn makespan(&self, inst: &Instance) -> u64 {
        self.loads(inst).into_iter().max().unwrap_or(0)
    }

    /// Verifies the schedule is structurally valid for `inst`: every job
    /// assigned exactly once to an in-range machine. Returns the makespan.
    pub fn validate(&self, inst: &Instance) -> Result<u64, String> {
        if self.machine_of.len() != inst.num_jobs() {
            return Err(format!(
                "schedule covers {} jobs, instance has {}",
                self.machine_of.len(),
                inst.num_jobs()
            ));
        }
        if self.machines != inst.machines() {
            return Err(format!(
                "schedule has {} machines, instance has {}",
                self.machines,
                inst.machines()
            ));
        }
        if let Some((job, &m)) = self
            .machine_of
            .iter()
            .enumerate()
            .find(|(_, &m)| m >= self.machines)
        {
            return Err(format!("job {job} assigned to invalid machine {m}"));
        }
        Ok(self.makespan(inst))
    }

    /// Jobs on each machine, as index lists (useful for reporting).
    pub fn machine_jobs(&self) -> Vec<Vec<usize>> {
        let mut per = vec![Vec::new(); self.machines];
        for (job, &m) in self.machine_of.iter().enumerate() {
            per[m].push(job);
        }
        per
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst() -> Instance {
        Instance::new(vec![3, 1, 4, 1, 5], 2)
    }

    #[test]
    fn loads_and_makespan() {
        let s = Schedule::new(vec![0, 0, 1, 1, 0], 2);
        assert_eq!(s.loads(&inst()), vec![9, 5]);
        assert_eq!(s.makespan(&inst()), 9);
    }

    #[test]
    fn validate_accepts_good_schedule() {
        let s = Schedule::new(vec![0, 1, 0, 1, 1], 2);
        assert_eq!(s.validate(&inst()).unwrap(), 7);
    }

    #[test]
    fn validate_rejects_wrong_job_count() {
        let s = Schedule::new(vec![0, 1], 2);
        assert!(s.validate(&inst()).is_err());
    }

    #[test]
    fn validate_rejects_machine_count_mismatch() {
        let s = Schedule::new(vec![0, 1, 0, 1, 1], 3);
        assert!(s.validate(&inst()).is_err());
    }

    #[test]
    fn machine_jobs_partitions_jobs() {
        let s = Schedule::new(vec![0, 1, 0, 1, 1], 2);
        let per = s.machine_jobs();
        assert_eq!(per[0], vec![0, 2]);
        assert_eq!(per[1], vec![1, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn constructor_rejects_bad_machine() {
        Schedule::new(vec![0, 2], 2);
    }
}
