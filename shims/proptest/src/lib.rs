//! Offline shim for proptest: property-based testing by deterministic
//! random sampling.
//!
//! Implements the subset of the proptest 1.x API this workspace uses —
//! the [`proptest!`] macro, integer-range / tuple / [`collection::vec`]
//! strategies, `prop_map` / `prop_flat_map` / `prop_filter`, the
//! `prop_assert*` macros, and [`test_runner::ProptestConfig`] — with two
//! simplifications:
//!
//! * **no shrinking** — a failing case panics with the case number; the
//!   RNG is seeded from the test name, so failures reproduce exactly on
//!   rerun;
//! * **plain sampling** — values are drawn uniformly, without proptest's
//!   bias toward boundary values.

pub mod test_runner {
    //! Test-runner configuration and the deterministic RNG.

    /// Subset of proptest's run configuration: the case count.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of sampled cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Failure value property bodies may return via `?` / `return Err(…)`.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failed-case error with the given reason.
        pub fn fail(reason: impl Into<String>) -> Self {
            Self(reason.into())
        }

        /// In real proptest this asks the runner to discard the case; the
        /// shim treats it as a plain skip marker with the same surface.
        pub fn reject(reason: impl Into<String>) -> Self {
            Self(format!("rejected: {}", reason.into()))
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            self.0.fmt(f)
        }
    }

    /// Deterministic xorshift64* generator, seeded per test.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the RNG from a test name, so every run of a given test
        /// samples the same cases.
        pub fn deterministic(name: &str) -> Self {
            let mut state = 0xcbf29ce484222325u64; // FNV-1a
            for b in name.bytes() {
                state ^= b as u64;
                state = state.wrapping_mul(0x100000001b3);
            }
            Self {
                state: if state == 0 { 0x9E3779B97F4A7C15 } else { state },
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }

        /// Uniform value in `[lo, hi]`.
        pub fn below_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
            debug_assert!(lo <= hi);
            let span = hi.wrapping_sub(lo).wrapping_add(1);
            if span == 0 {
                self.next_u64()
            } else {
                lo + self.next_u64() % span
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of type `Value`.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Chains a dependent strategy off each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Rejects values failing the predicate (resamples, up to a cap).
        fn prop_filter<F>(self, reason: impl Into<String>, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason: reason.into(),
                f,
            }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(std::rc::Rc::new(self))
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        reason: String,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 consecutive samples: {}", self.reason);
        }
    }

    /// Type-erased strategy (see [`Strategy::boxed`]).
    pub struct BoxedStrategy<T>(std::rc::Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            Self(self.0.clone())
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    macro_rules! impl_unsigned_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    rng.below_inclusive(self.start as u64, self.end as u64 - 1) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    rng.below_inclusive(lo as u64, hi as u64) as $t
                }
            }
        )*};
    }

    impl_unsigned_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_signed_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128 - 1) as u64;
                    (self.start as i128 + rng.below_inclusive(0, span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as i128 - lo as i128) as u64;
                    (lo as i128 + rng.below_inclusive(0, span) as i128) as $t
                }
            }
        )*};
    }

    impl_signed_strategy!(i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    impl Strategy for () {
        type Value = ();
        fn generate(&self, _rng: &mut TestRng) {}
    }
}

pub mod arbitrary {
    //! `any::<T>()` — full-range strategies for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `T` (full range for integers).
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Admissible element-count specifications for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.below_inclusive(self.size.lo as u64, self.size.hi as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy: `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Everything a proptest file conventionally glob-imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The `prop::` namespace (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Runs `cases` sampled executions of a property body. Used by the
/// [`proptest!`] expansion; not part of the public proptest API.
pub fn __run_cases(
    cases: u32,
    name: &str,
    mut body: impl FnMut(&mut test_runner::TestRng) -> Result<(), test_runner::TestCaseError>,
) {
    let mut rng = test_runner::TestRng::deterministic(name);
    for case in 0..cases {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        match result {
            Ok(Ok(())) => {}
            Ok(Err(e)) => {
                panic!("proptest property `{name}` failed on case {case} of {cases}: {e} (deterministic seed — rerun reproduces it)");
            }
            Err(payload) => {
                eprintln!("proptest property `{name}` failed on case {case} of {cases} (deterministic seed — rerun reproduces it)");
                std::panic::resume_unwind(payload);
            }
        }
    }
}

/// Declares property tests: `proptest! { #[test] fn p(x in strat) { … } }`.
///
/// Supports an optional leading `#![proptest_config(…)]` controlling the
/// case count. Each argument strategy is constructed once, then sampled
/// per case with a deterministic per-test RNG.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                // One tuple strategy built once; sampled afresh per case.
                let __strat = ($(($strat),)*);
                $crate::__run_cases(__config.cases, stringify!($name), |__rng| {
                    let ($($arg,)*) =
                        $crate::strategy::Strategy::generate(&__strat, __rng);
                    // Bodies may use `?` / `return Ok(())` (proptest's
                    // Result convention) or fall through with plain `()`.
                    $body
                    Ok(())
                });
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($arg in $strat),*) $body)*
        }
    };
}

/// `assert!` inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..=9, y in 0usize..5) {
            prop_assert!((3..=9).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_strategy_respects_len(v in prop::collection::vec(1u64..100, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| (1..100).contains(&e)));
        }

        #[test]
        fn combinators_compose((a, b) in (1usize..4, 1usize..4).prop_map(|(x, y)| (x * 10, y))) {
            prop_assert!(a >= 10 && a < 40 && a % 10 == 0);
            prop_assert!(b < 4);
        }

        #[test]
        fn flat_map_chains(v in (1usize..=3).prop_flat_map(|d| prop::collection::vec(0u64..10, d))) {
            prop_assert!((1..=3).contains(&v.len()));
        }

        #[test]
        fn filter_rejects(x in (0u64..100).prop_filter("even only", |&x| x % 2 == 0)) {
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::deterministic("t");
        let mut b = crate::test_runner::TestRng::deterministic("t");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
