//! Table-shape selection: the paper's published shapes plus balanced
//! factorizations for the Fig. 3 size sweep.

/// The exact dimension-size rows of the paper's Tables I–VI, with the
/// published GPU-DIM3 block sizes and the best-performing DIM column
/// (`(dim, block sizes)`).
pub struct PaperTableRow {
    pub table_size: usize,
    pub extents: Vec<usize>,
    pub dim3_blocks: Vec<usize>,
    pub best_dim: usize,
    pub best_blocks: Vec<usize>,
    /// The published best-DIM column of this row cannot be produced by
    /// Algorithm 4 as stated (it splits more dimensions than the DIM cap
    /// allows, or uses a divisor the square-root descent cannot yield, or
    /// breaks extent ties differently from the same row's DIM3 column).
    /// The GPU-DIM3 column still reproduces exactly for every row.
    pub published_inconsistent: bool,
}

/// Tables I–VI of the paper, one entry per published row.
///
/// Note: Table V row 1 prints block size 5 for the unselected extent-6
/// dimension 4 under GPU-DIM3; 5 does not divide 6 and every other
/// unselected dimension keeps its full extent, so the published value is
/// a typo for 6 and is recorded as 6 here.
pub fn paper_rows() -> Vec<PaperTableRow> {
    let r = |table_size: usize,
             extents: &[usize],
             dim3: &[usize],
             best_dim: usize,
             best: &[usize]| PaperTableRow {
        table_size,
        extents: extents.to_vec(),
        dim3_blocks: dim3.to_vec(),
        best_dim,
        best_blocks: best.to_vec(),
        published_inconsistent: false,
    };
    let mut rows = vec![
        // Table I: size 3456.
        r(3456, &[6, 4, 6, 6, 4], &[3, 4, 3, 3, 4], 5, &[3, 2, 3, 3, 2]),
        r(
            3456,
            &[2, 6, 3, 4, 6, 4],
            &[2, 3, 3, 2, 3, 4],
            5,
            &[2, 3, 1, 2, 3, 2],
        ),
        r(
            3456,
            &[2, 2, 4, 3, 2, 6, 3, 2],
            &[2, 2, 2, 1, 2, 3, 3, 2],
            5,
            &[1, 2, 2, 1, 1, 3, 1, 1],
        ),
        r(
            3456,
            &[3, 2, 3, 2, 2, 2, 2, 3, 4],
            &[1, 2, 1, 2, 2, 2, 2, 3, 2],
            5,
            &[1, 1, 1, 2, 2, 2, 2, 1, 2],
        ),
        r(
            3456,
            &[2, 3, 2, 2, 3, 3, 2, 2, 2, 2],
            &[2, 1, 2, 2, 1, 1, 2, 2, 2, 2],
            5,
            &[2, 1, 1, 1, 1, 1, 2, 2, 2, 2],
        ),
        // Table II: size 8640.
        r(
            8640,
            &[5, 3, 6, 3, 4, 4, 2],
            &[1, 3, 3, 3, 2, 4, 2],
            5,
            &[1, 1, 3, 3, 2, 2, 2],
        ),
        r(
            8640,
            &[5, 6, 2, 3, 2, 2, 4, 3],
            &[1, 3, 2, 3, 2, 2, 2, 3],
            5,
            &[1, 3, 2, 1, 2, 2, 2, 1],
        ),
        r(
            8640,
            &[3, 3, 4, 3, 2, 2, 5, 2, 2],
            &[1, 3, 2, 3, 2, 2, 1, 2, 2],
            5,
            &[1, 1, 2, 1, 2, 2, 1, 2, 2],
        ),
        // Table III: size 12960.
        r(12960, &[3, 16, 15, 18], &[3, 4, 5, 6], 5, &[1, 4, 5, 6]),
        r(
            12960,
            &[4, 5, 3, 6, 4, 3, 3],
            &[2, 1, 3, 3, 4, 3, 3],
            5,
            &[2, 1, 1, 3, 2, 3, 3],
        ),
        r(
            12960,
            &[3, 4, 3, 4, 3, 5, 3, 2],
            &[3, 2, 3, 2, 3, 1, 3, 2],
            5,
            &[1, 2, 1, 2, 3, 1, 3, 2],
        ),
        r(
            12960,
            &[3, 3, 3, 2, 3, 4, 2, 5, 2],
            &[1, 3, 3, 2, 3, 2, 2, 1, 2],
            5,
            &[1, 1, 1, 2, 3, 2, 2, 1, 2],
        ),
        // Table IV: size 20736.
        r(
            20736,
            &[4, 4, 6, 6, 2, 3, 3, 2],
            &[2, 4, 3, 3, 2, 3, 3, 2],
            6,
            &[2, 1, 2, 2, 1, 1, 1, 1],
        ),
        r(
            20736,
            &[2, 4, 2, 3, 3, 3, 3, 2, 2, 2, 2],
            &[2, 2, 2, 1, 1, 3, 3, 2, 2, 2, 2],
            6,
            &[1, 2, 2, 1, 1, 1, 1, 2, 2, 2, 2],
        ),
        // Table V: size 362880 (dim4 block 6 corrects the published typo).
        r(
            362880,
            &[5, 6, 3, 7, 6, 4, 8, 3],
            &[5, 3, 3, 1, 6, 4, 4, 3],
            7,
            &[1, 3, 1, 1, 3, 2, 4, 3],
        ),
        r(
            362880,
            &[3, 3, 3, 4, 5, 7, 2, 3, 4, 4],
            &[3, 3, 3, 2, 1, 1, 2, 3, 4, 4],
            7,
            &[3, 3, 1, 2, 1, 1, 2, 1, 2, 2],
        ),
        // Table VI: size 403200.
        r(
            403200,
            &[3, 10, 7, 6, 4, 8, 10],
            &[3, 5, 7, 6, 4, 4, 5],
            7,
            &[1, 5, 1, 3, 2, 4, 5],
        ),
        r(
            403200,
            &[4, 5, 4, 2, 3, 5, 7, 3, 8],
            &[4, 1, 4, 2, 3, 5, 1, 3, 4],
            7,
            &[2, 1, 2, 2, 1, 1, 1, 3, 4],
        ),
    ];
    // Four published best-DIM columns are internally inconsistent with
    // Algorithm 4 (verified by hand):
    // * Table I row 3 (3456, 8 dims): DIM5 column splits 7 dimensions;
    // * Table I row 5 (3456, 10 dims): tie among extent-2 dimensions
    //   selected differently from the same row's DIM3 column;
    // * Table IV row 1 (20736, 8 dims): DIM6 column splits all 8
    //   dimensions and shows block 1 for an extent-4 dimension, i.e.
    //   divisor 4, which the square-root descent cannot produce;
    // * Table V row 2 (362880, 10 dims): extent-3 ties selected
    //   differently from the same row's DIM3 column.
    for row in &mut rows {
        row.published_inconsistent = matches!(
            (row.table_size, row.extents.len()),
            (3456, 8) | (3456, 10) | (20736, 8) | (362880, 10)
        );
    }
    rows
}

/// Greedy balanced factorization of `size` into exactly `dims` factors
/// ≥ 2 (ascending), or `None` if impossible. Factors are chosen near
/// `size^(1/dims)` so the shape resembles the near-cubic tables the
/// rounding step produces.
pub fn balanced_factorization(size: usize, dims: usize) -> Option<Vec<usize>> {
    fn rec(size: usize, dims: usize, min_factor: usize, out: &mut Vec<usize>) -> bool {
        if dims == 1 {
            if size >= min_factor {
                out.push(size);
                return true;
            }
            return false;
        }
        let ideal = (size as f64).powf(1.0 / dims as f64).round() as usize;
        // Try candidates near the ideal factor first.
        let mut candidates: Vec<usize> = (min_factor..=size)
            .filter(|f| size.is_multiple_of(*f))
            .collect();
        candidates.sort_by_key(|&f| f.abs_diff(ideal));
        for f in candidates {
            out.push(f);
            if rec(size / f, dims - 1, f, out) {
                return true;
            }
            out.pop();
        }
        false
    }
    let mut out = Vec::with_capacity(dims);
    rec(size, dims, 2, &mut out).then_some(out)
}

/// The Fig. 3 size sweep: (group, sizes). Sizes are composite so they
/// factor into PTAS-like shapes. Unknown groups are an error, not a
/// panic, so callers (the `fig3` binary) can report them cleanly.
pub fn fig3_sizes(group: char) -> Result<Vec<usize>, String> {
    match group {
        'a' => Ok(vec![
            144, 288, 576, 1152, 1728, 2592, 3456, 4320, 5184, 6912, 8640, 10368,
        ]),
        'b' => Ok(vec![
            20736, 25920, 31104, 36288, 41472, 51840, 62208, 72576, 82944, 86400, 93312, 103680,
        ]),
        'c' => Ok(vec![
            110592, 145152, 165888, 207360, 248832, 290304, 311040, 362880, 388800, 403200,
            435456, 497664,
        ]),
        other => Err(format!("unknown group `{other}`; use a, b, or c")),
    }
}

/// Picks the evaluation shape for a Fig. 3 size: prefer 7 dimensions
/// (mid-range of the paper's sweep), fall back outward.
pub fn fig3_shape(size: usize) -> Vec<usize> {
    for dims in [7usize, 6, 8, 5, 9, 4, 10, 3, 11, 2] {
        if let Some(f) = balanced_factorization(size, dims) {
            return f;
        }
    }
    vec![size]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rows_product_matches_size() {
        for row in paper_rows() {
            let product: usize = row.extents.iter().product();
            assert_eq!(product, row.table_size, "{:?}", row.extents);
            assert_eq!(row.extents.len(), row.dim3_blocks.len());
            assert_eq!(row.extents.len(), row.best_blocks.len());
        }
    }

    #[test]
    fn paper_block_sizes_divide_extents() {
        for row in paper_rows() {
            for (&e, &b) in row.extents.iter().zip(&row.dim3_blocks) {
                assert_eq!(e % b, 0, "table {}: {e} % {b}", row.table_size);
            }
            for (&e, &b) in row.extents.iter().zip(&row.best_blocks) {
                assert_eq!(e % b, 0, "table {}: {e} % {b}", row.table_size);
            }
        }
    }

    #[test]
    fn balanced_factorization_correct() {
        let f = balanced_factorization(3456, 5).unwrap();
        assert_eq!(f.iter().product::<usize>(), 3456);
        assert_eq!(f.len(), 5);
        assert!(f.iter().all(|&x| x >= 2));
        assert!(balanced_factorization(7, 3).is_none());
        assert_eq!(balanced_factorization(8, 3).unwrap(), vec![2, 2, 2]);
    }

    #[test]
    fn all_fig3_sizes_factor() {
        for g in ['a', 'b', 'c'] {
            for size in fig3_sizes(g).unwrap() {
                let shape = fig3_shape(size);
                assert_eq!(shape.iter().product::<usize>(), size);
                assert!(
                    (2..=13).contains(&shape.len()),
                    "{size}: {shape:?} has {} dims",
                    shape.len()
                );
            }
        }
    }

    #[test]
    fn groups_cover_paper_ranges() {
        assert!(fig3_sizes('a')
            .unwrap()
            .iter()
            .all(|&s| (100..=10_368).contains(&s)));
        assert!(fig3_sizes('b')
            .unwrap()
            .iter()
            .all(|&s| (20_000..=104_000).contains(&s)));
        assert!(fig3_sizes('c')
            .unwrap()
            .iter()
            .all(|&s| (110_000..=500_000).contains(&s)));
    }

    #[test]
    fn unknown_groups_are_errors() {
        let err = fig3_sizes('z').unwrap_err();
        assert!(err.contains('z'), "error should name the group: {err}");
    }
}
