//! Replica byte accounting: a worker stores warm entries on behalf of
//! ring predecessors (replication factor R − 1 successor copies), but
//! never unboundedly — the oldest replicated entries are evicted first
//! once the budget is exceeded.

use std::collections::HashMap;
use std::collections::VecDeque;

/// Oldest-first byte budget over replicated warm entries.
///
/// `charge` admits an entry and returns whichever previously-admitted
/// keys must be evicted to get back under budget. The caller (the
/// serve layer) removes those keys from its warm log. Entries the
/// worker *owns* are never charged here — only copies held for the
/// ring pass through this accounting.
#[derive(Debug)]
pub struct ReplicaBudget {
    budget: u64,
    total: u64,
    /// Admission order (front = oldest). Stale entries for re-charged
    /// keys are skipped at eviction time via the size map.
    order: VecDeque<Vec<u8>>,
    sizes: HashMap<Vec<u8>, u64>,
}

impl ReplicaBudget {
    /// A budget of `bytes` replica bytes.
    pub fn new(bytes: u64) -> Self {
        Self {
            budget: bytes,
            total: 0,
            order: VecDeque::new(),
            sizes: HashMap::new(),
        }
    }

    /// The configured budget in bytes.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Bytes currently charged.
    pub fn used(&self) -> u64 {
        self.total
    }

    /// Number of distinct keys charged.
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// Whether nothing is charged.
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// Charges `bytes` for `key` (replacing any previous charge, which
    /// also refreshes its age) and returns the keys to evict,
    /// oldest-first, to satisfy the budget. The newly charged key is
    /// only ever evicted if it alone exceeds the whole budget.
    pub fn charge(&mut self, key: &[u8], bytes: u64) -> Vec<Vec<u8>> {
        if let Some(old) = self.sizes.insert(key.to_vec(), bytes) {
            self.total -= old;
        }
        self.total += bytes;
        self.order.push_back(key.to_vec());
        let mut evicted = Vec::new();
        while self.total > self.budget {
            let Some(oldest) = self.order.pop_front() else {
                break;
            };
            // A re-charged key appears multiple times in the order
            // queue; only its newest position is live.
            if self.order.contains(&oldest) {
                continue;
            }
            let Some(size) = self.sizes.remove(&oldest) else {
                continue; // already released
            };
            self.total -= size;
            evicted.push(oldest);
        }
        evicted
    }

    /// Releases the charge for `key` (e.g. the worker became the
    /// key's owner, or the entry was dropped for another reason).
    pub fn release(&mut self, key: &[u8]) {
        if let Some(size) = self.sizes.remove(key) {
            self.total -= size;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_oldest_first_when_over_budget() {
        let mut budget = ReplicaBudget::new(100);
        assert!(budget.charge(b"a", 40).is_empty());
        assert!(budget.charge(b"b", 40).is_empty());
        let evicted = budget.charge(b"c", 40);
        assert_eq!(evicted, vec![b"a".to_vec()]);
        assert_eq!(budget.used(), 80);
        assert_eq!(budget.len(), 2);
    }

    #[test]
    fn recharge_refreshes_age_and_replaces_size() {
        let mut budget = ReplicaBudget::new(100);
        budget.charge(b"a", 40);
        budget.charge(b"b", 40);
        // Re-charge `a`: it becomes the newest, so `b` evicts next.
        budget.charge(b"a", 30);
        assert_eq!(budget.used(), 70);
        let evicted = budget.charge(b"c", 40);
        assert_eq!(evicted, vec![b"b".to_vec()]);
        assert!(budget.sizes.contains_key(&b"a".to_vec()));
    }

    #[test]
    fn release_frees_bytes_without_eviction() {
        let mut budget = ReplicaBudget::new(50);
        budget.charge(b"a", 50);
        budget.release(b"a");
        assert_eq!(budget.used(), 0);
        assert!(budget.charge(b"b", 50).is_empty());
    }

    #[test]
    fn oversized_single_entry_evicts_itself() {
        let mut budget = ReplicaBudget::new(10);
        let evicted = budget.charge(b"huge", 99);
        assert_eq!(evicted, vec![b"huge".to_vec()]);
        assert!(budget.is_empty());
        assert_eq!(budget.used(), 0);
    }
}
