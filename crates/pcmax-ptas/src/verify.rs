//! Verification helpers: schedule validity and approximation-quality
//! checks, shared by tests, examples, and the benchmark harness.

use crate::ptas::PtasResult;
use pcmax_core::{lower_bound, Instance};

/// The worst-case multiplicative guarantee of the PTAS for a given `ε`:
/// `1 + 1/k + 1/k²` with `k = ⌈1/ε⌉` (long-job rounding slack), which is
/// ≤ `1 + ε + ε²`. Short-job placement never worsens the bound while the
/// target is ≥ the area bound.
pub fn guarantee_factor(epsilon: f64) -> f64 {
    let k = (1.0 / epsilon).ceil();
    1.0 + 1.0 / k + 1.0 / (k * k)
}

/// Checks a PTAS result end-to-end against its instance:
///
/// * schedule is structurally valid (every job exactly once);
/// * reported makespan matches the schedule;
/// * makespan is within `guarantee_factor(ε)` of the instance lower bound
///   *or* of `reference_opt` when the caller knows the true optimum.
///
/// Returns a human-readable error on the first violation.
pub fn check_result(
    inst: &Instance,
    res: &PtasResult,
    epsilon: f64,
    reference_opt: Option<u64>,
) -> Result<(), String> {
    let ms = res.schedule.validate(inst)?;
    if ms != res.makespan {
        return Err(format!(
            "reported makespan {} but schedule realises {ms}",
            res.makespan
        ));
    }
    let baseline = reference_opt.unwrap_or_else(|| lower_bound(inst));
    // +1 absorbs integer rounding of the bound itself.
    let bound = (guarantee_factor(epsilon) * baseline as f64).ceil() as u64 + 1;
    if reference_opt.is_some() && ms > bound {
        return Err(format!(
            "makespan {ms} exceeds (1+ε) bound {bound} (opt {baseline})"
        ));
    }
    if res.machines_used > inst.machines() {
        return Err(format!(
            "DP used {} machines, instance has {}",
            res.machines_used,
            inst.machines()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ptas::Ptas;
    use pcmax_core::exact::brute_force_makespan;
    use pcmax_core::gen::uniform;

    #[test]
    fn guarantee_factor_values() {
        assert!((guarantee_factor(0.3) - (1.0 + 0.25 + 0.0625)).abs() < 1e-12);
        assert!((guarantee_factor(1.0) - 3.0).abs() < 1e-12);
        assert!(guarantee_factor(0.1) < 1.111);
    }

    #[test]
    fn check_result_accepts_honest_runs() {
        for seed in 0..5 {
            let inst = uniform(seed, 10, 3, 2, 20);
            let res = Ptas::new(0.3).solve(&inst);
            let opt = brute_force_makespan(&inst);
            check_result(&inst, &res, 0.3, Some(opt)).unwrap();
        }
    }

    #[test]
    fn check_result_rejects_wrong_makespan_claim() {
        let inst = uniform(1, 10, 3, 2, 20);
        let mut res = Ptas::new(0.3).solve(&inst);
        res.makespan += 1;
        assert!(check_result(&inst, &res, 0.3, None).is_err());
    }
}
