//! Solver-as-a-service for `P||Cmax`.
//!
//! This crate wraps the PTAS of [`pcmax_ptas`] in a concurrent service
//! suitable for answering a stream of scheduling requests:
//!
//! * **Admission control** — a bounded queue rejects work at the door
//!   ([`ServeError::Overloaded`]) instead of letting latency collapse.
//! * **Deadline degradation** — a request that cannot finish inside its
//!   deadline still gets a *valid* schedule, produced by the better of
//!   LPT and MULTIFIT, flagged [`SolveResponse::degraded`].
//! * **Rounded-instance DP cache** — probes are memoised under the
//!   canonical key `(class counts, gcd-normalised sizes, capacity)` from
//!   [`pcmax_ptas::DpProblem::canonical_key`], so repeated or similar
//!   instances skip the DP entirely; the cache is sharded and LRU-bounded.
//! * **Batching** — workers drain requests in batches and bucket them by
//!   the rounding parameter `k`, maximising cache-key locality; buckets
//!   run on the rayon pool.
//! * **Representation ladder** — under [`solver::ReprPolicy::Auto`] each
//!   probe is *predicted* into the cheapest representation that fits the
//!   cell budget: a dense in-RAM table, the sparse frontier of
//!   [`pcmax_sparse`], or a paged table through a tiered store; only a
//!   probe over budget in every representation degrades.
//!
//! Use [`Service`] in-process, or [`serve_tcp`] + [`Client`] for the
//! line-protocol TCP front-end (`pcmax serve` on the command line).

pub mod cache;
pub mod client;
pub mod portfolio;
pub mod proto;
pub mod service;
pub mod solver;
pub mod stats;
pub mod tcp;
pub mod warm;

pub use cache::ShardedCache;
pub use client::{Client, ClientError, ClientReply};
pub use portfolio::{
    solve_portfolio, Arm, PortfolioCounters, PortfolioOutcome, PortfolioPolicy,
};
pub use service::{
    heuristic_best, PendingSolve, ServeConfig, ServeError, Service, SolveRequest, SolveResponse,
};
pub use solver::{
    entry_cost, probe_features, solve_cached, CachedDp, Degrade, DpCache, InstanceFeatures,
    ReprCounts, ReprPolicy, SolveOutcome, SolverOptions,
};
pub use stats::{
    ArmReport, CacheReport, EngineUsed, HealthReply, ImproveReport, PortfolioReport, ReprReport,
    RequestStats, ServeHistograms, ServeMetrics, ServiceReport, StoreReport,
};

// The improver's knobs surface in [`ServeConfig`]; re-export them so
// serve consumers (cluster, CLI) need not depend on pcmax-improve.
pub use pcmax_improve::{ImproveConfig, ImproveMode, ImproveOutcome, ImproveStats};
pub use tcp::{serve_tcp, TcpHandle};
pub use warm::WarmTier;
