//! The knapsack DP engines.
//!
//! All engines fill the same capacity-box table layer by layer (one
//! layer per item) and must agree cell-for-cell:
//!
//! * [`KnapEngine::InPlace`] — the classic trick: sweep cells in
//!   *reverse* row-major order so `DPⱼ₋₁(c − wⱼ)` is read before it is
//!   overwritten; one buffer, no copies;
//! * [`KnapEngine::Layered`] — rayon over cells with a double buffer
//!   (every cell of a layer is independent given the previous layer);
//! * [`KnapEngine::Blocked`] — the paper's data-partitioning scheme:
//!   the table lives in block-major order ([`BlockedLayout`]) and each
//!   layer sweeps blocks in reverse block-row-major order, cells within
//!   a block in reverse in-block order. That order is in-place-safe for
//!   the same reason the global reverse sweep is: a dependency's block
//!   is componentwise ≤ the cell's block, so it is visited later.

use crate::problem::KnapsackProblem;
use ndtable::partition::DivisorRule;
use ndtable::{BlockedLayout, Divisor, Shape};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Which engine fills the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KnapEngine {
    /// Reverse row-major in-place sweep.
    InPlace,
    /// Rayon per-layer double buffer.
    Layered,
    /// Block-partitioned in-place sweep (dimension limit as in Alg. 4).
    Blocked {
        /// Maximum number of dimensions the divisor may split.
        dim_limit: usize,
    },
}

/// The filled table plus the optimum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KnapSolution {
    /// Final-layer values in row-major order.
    pub values: Vec<u64>,
    /// Optimal profit (value at the full-capacity corner).
    pub best: u64,
}

/// Solves `problem` with the chosen engine.
pub fn solve(problem: &KnapsackProblem, engine: KnapEngine) -> KnapSolution {
    match engine {
        KnapEngine::InPlace => solve_in_place(problem),
        KnapEngine::Layered => solve_layered(problem),
        KnapEngine::Blocked { dim_limit } => solve_blocked(problem, dim_limit),
    }
}

/// Flat offset of a weight vector, or `None` if it exceeds the box.
fn weight_offset(shape: &Shape, weights: &[usize]) -> Option<usize> {
    if !shape.contains(weights) {
        return None; // cannot fit in any cell
    }
    Some(shape.flatten(weights))
}

fn solve_in_place(problem: &KnapsackProblem) -> KnapSolution {
    let shape = problem.table_shape();
    let sigma = shape.size();
    let mut values = vec![0u64; sigma];
    let mut idx = vec![0usize; shape.ndim()];
    for item in problem.items() {
        let Some(delta) = weight_offset(&shape, &item.weights) else {
            continue;
        };
        // Reverse sweep; a cell takes the item iff c ≥ w componentwise.
        for flat in (0..sigma).rev() {
            shape.unflatten_into(flat, &mut idx);
            if idx.iter().zip(&item.weights).all(|(&c, &w)| c >= w) {
                let cand = values[flat - delta] + item.profit;
                if cand > values[flat] {
                    values[flat] = cand;
                }
            }
        }
    }
    finish(values)
}

fn solve_layered(problem: &KnapsackProblem) -> KnapSolution {
    let shape = problem.table_shape();
    let sigma = shape.size();
    let mut prev = vec![0u64; sigma];
    let mut next = vec![0u64; sigma];
    for item in problem.items() {
        let Some(delta) = weight_offset(&shape, &item.weights) else {
            continue;
        };
        next.par_iter_mut()
            .enumerate()
            .for_each_init(
                || vec![0usize; shape.ndim()],
                |idx, (flat, out)| {
                    shape.unflatten_into(flat, idx);
                    let take = if idx
                        .iter()
                        .zip(&item.weights)
                        .all(|(&c, &w)| c >= w) { prev[flat - delta] + item.profit } else { 0 };
                    *out = take.max(prev[flat]);
                },
            );
        std::mem::swap(&mut prev, &mut next);
    }
    finish(prev)
}

fn solve_blocked(problem: &KnapsackProblem, dim_limit: usize) -> KnapSolution {
    let shape = problem.table_shape();
    let divisor = Divisor::compute(&shape, dim_limit, DivisorRule::TableConsistent);
    let layout = BlockedLayout::new(shape.clone(), divisor);
    let mut vals = vec![0u64; shape.size()];
    let ndim = shape.ndim();
    let mut base = vec![0usize; ndim];
    let mut inb = vec![0usize; ndim];
    let mut cell = vec![0usize; ndim];
    let mut dep = vec![0usize; ndim];
    for item in problem.items() {
        if weight_offset(&shape, &item.weights).is_none() {
            continue;
        }
        // Reverse block-row-major, reverse in-block: in-place safe.
        for bf in (0..layout.num_blocks()).rev() {
            layout.block_base(bf, &mut base);
            for in_flat in (0..layout.cells_per_block()).rev() {
                layout.block_shape().unflatten_into(in_flat, &mut inb);
                let mut fits = true;
                for d in 0..ndim {
                    cell[d] = base[d] + inb[d];
                    if cell[d] < item.weights[d] {
                        fits = false;
                    }
                }
                if !fits {
                    continue;
                }
                for d in 0..ndim {
                    dep[d] = cell[d] - item.weights[d];
                }
                let own = layout.blocked_offset(&cell);
                let dep_off = layout.blocked_offset(&dep);
                let cand = vals[dep_off] + item.profit;
                if cand > vals[own] {
                    vals[own] = cand;
                }
            }
        }
    }
    finish(layout.scatter_back(&vals))
}

fn finish(values: Vec<u64>) -> KnapSolution {
    let best = *values.last().expect("non-empty table");
    KnapSolution { values, best }
}

/// Solves and reconstructs one optimal selection (item indices).
/// Stores a selection bitmask per cell, so it requires `n ≤ 64`.
pub fn solve_with_selection(problem: &KnapsackProblem) -> (KnapSolution, Vec<usize>) {
    let n = problem.num_items();
    assert!(n <= 64, "selection reconstruction needs n ≤ 64");
    let shape = problem.table_shape();
    let sigma = shape.size();
    let mut values = vec![0u64; sigma];
    let mut masks = vec![0u64; sigma];
    let mut idx = vec![0usize; shape.ndim()];
    for (j, item) in problem.items().iter().enumerate() {
        let Some(delta) = weight_offset(&shape, &item.weights) else {
            continue;
        };
        for flat in (0..sigma).rev() {
            shape.unflatten_into(flat, &mut idx);
            if idx.iter().zip(&item.weights).all(|(&c, &w)| c >= w) {
                let cand = values[flat - delta] + item.profit;
                if cand > values[flat] {
                    values[flat] = cand;
                    masks[flat] = masks[flat - delta] | (1 << j);
                }
            }
        }
    }
    let best_mask = masks[sigma - 1];
    let selection: Vec<usize> = (0..n).filter(|&j| best_mask & (1 << j) != 0).collect();
    (finish(values), selection)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force;
    use crate::problem::Item;

    fn sample() -> KnapsackProblem {
        KnapsackProblem::new(
            vec![10, 8],
            vec![
                Item { profit: 6, weights: vec![4, 2] },
                Item { profit: 5, weights: vec![3, 5] },
                Item { profit: 9, weights: vec![7, 3] },
                Item { profit: 4, weights: vec![2, 2] },
            ],
        )
    }

    fn engines() -> Vec<KnapEngine> {
        vec![
            KnapEngine::InPlace,
            KnapEngine::Layered,
            KnapEngine::Blocked { dim_limit: 2 },
            KnapEngine::Blocked { dim_limit: 9 },
        ]
    }

    #[test]
    fn engines_agree_and_match_brute_force() {
        let p = sample();
        let expect = brute_force(&p).0;
        for engine in engines() {
            let sol = solve(&p, engine);
            assert_eq!(sol.best, expect, "{engine:?}");
        }
    }

    #[test]
    fn engines_agree_cell_for_cell() {
        let p = sample();
        let reference = solve(&p, KnapEngine::InPlace);
        for engine in engines() {
            assert_eq!(solve(&p, engine).values, reference.values, "{engine:?}");
        }
    }

    #[test]
    fn zero_capacity_dimension_blocks_heavy_items() {
        let p = KnapsackProblem::new(
            vec![5, 0],
            vec![
                Item { profit: 10, weights: vec![1, 1] }, // needs dim-1 capacity
                Item { profit: 3, weights: vec![2, 0] },
            ],
        );
        for engine in engines() {
            assert_eq!(solve(&p, engine).best, 3, "{engine:?}");
        }
    }

    #[test]
    fn item_heavier_than_box_is_ignored() {
        let p = KnapsackProblem::new(
            vec![4],
            vec![
                Item { profit: 100, weights: vec![9] },
                Item { profit: 1, weights: vec![4] },
            ],
        );
        assert_eq!(solve(&p, KnapEngine::InPlace).best, 1);
    }

    #[test]
    fn zero_one_property_item_taken_at_most_once() {
        // One item worth taking repeatedly if the DP were unbounded:
        // profit 5 at weight 2 under capacity 10 → 0/1 answer is 5, not 25.
        let p = KnapsackProblem::new(vec![10], vec![Item { profit: 5, weights: vec![2] }]);
        for engine in engines() {
            assert_eq!(solve(&p, engine).best, 5, "{engine:?}");
        }
    }

    #[test]
    fn selection_reconstruction_is_feasible_and_optimal() {
        let p = sample();
        let (sol, selection) = solve_with_selection(&p);
        let profit = p.evaluate(&selection).expect("selection must fit");
        assert_eq!(profit, sol.best);
        assert_eq!(sol.best, brute_force(&p).0);
    }

    #[test]
    fn monotone_in_items() {
        let mut items = sample().items().to_vec();
        let base = solve(&sample(), KnapEngine::InPlace).best;
        items.push(Item { profit: 2, weights: vec![1, 1] });
        let more = solve(
            &KnapsackProblem::new(vec![10, 8], items),
            KnapEngine::InPlace,
        )
        .best;
        assert!(more >= base);
    }

    #[test]
    fn three_dimensional_case() {
        let p = KnapsackProblem::new(
            vec![6, 6, 6],
            vec![
                Item { profit: 7, weights: vec![3, 2, 1] },
                Item { profit: 8, weights: vec![2, 3, 4] },
                Item { profit: 5, weights: vec![4, 4, 4] },
                Item { profit: 6, weights: vec![1, 1, 2] },
            ],
        );
        let expect = brute_force(&p).0;
        for engine in engines() {
            assert_eq!(solve(&p, engine).best, expect, "{engine:?}");
        }
    }
}
