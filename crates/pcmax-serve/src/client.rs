//! Blocking line-protocol client for the TCP front-end.

use crate::proto::{self, OkReply};
use crate::service::SolveRequest;
use crate::stats::{EngineUsed, HealthReply};
use pcmax_core::{Instance, Schedule};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Why a request failed, split the way a router needs it: transport
/// failures mean the *worker* is suspect (fail over), server `err`
/// lines mean the *request* was answered — just negatively (retry or
/// propagate, the connection is still good).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The TCP transport failed (connect, send, recv, or a
    /// protocol-garbage reply). The connection is unusable.
    Transport(String),
    /// The server answered with an `err` line (overloaded, invalid,
    /// shutting down). The connection keeps working.
    Server(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Transport(msg) | ClientError::Server(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for ClientError {}

/// One solved request, client-side.
#[derive(Debug, Clone)]
pub struct ClientReply {
    /// Achieved makespan (as reported by the server).
    pub makespan: u64,
    /// Converged target (absent for degraded answers).
    pub target: Option<u64>,
    /// Algorithm that produced the schedule.
    pub engine: EngineUsed,
    /// Whether the answer was degraded to a heuristic.
    pub degraded: bool,
    /// DP cache hits for this request.
    pub cache_hits: u64,
    /// DP cache misses for this request.
    pub cache_misses: u64,
    /// Queue wait in microseconds.
    pub queue_wait_us: u64,
    /// Solve time in microseconds.
    pub solve_us: u64,
    /// Certified bound of the arm that answered:
    /// `makespan ≤ (num/den)·OPT + slack`.
    pub guarantee: pcmax_core::Guarantee,
    /// A-posteriori achieved-vs-lower-bound gap in parts per million.
    pub gap_ppm: u64,
    /// The schedule, rebuilt from the wire assignment.
    pub schedule: Schedule,
}

/// A connected client. One in-flight request at a time (the protocol is
/// strictly request/response per line).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a running [`crate::serve_tcp`] endpoint.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Self::from_stream(TcpStream::connect(addr)?)
    }

    /// Connects with a bound on the TCP handshake, and applies the same
    /// bound as the initial read/write timeout — so a dead or hung peer
    /// costs at most `timeout`, never a wedged thread. The cluster
    /// router's connect path.
    pub fn connect_timeout(addr: &SocketAddr, timeout: Duration) -> std::io::Result<Self> {
        let stream = TcpStream::connect_timeout(addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Self::from_stream(stream)
    }

    fn from_stream(stream: TcpStream) -> std::io::Result<Self> {
        let peer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer: BufWriter::new(peer),
        })
    }

    /// Sets (or clears) the read/write timeout on the underlying stream.
    pub fn set_io_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        let stream = self.reader.get_ref();
        stream.set_read_timeout(timeout)?;
        stream.set_write_timeout(timeout)
    }

    fn roundtrip(&mut self, line: &str) -> Result<String, ClientError> {
        let transport = |stage: &str| {
            let stage = stage.to_string();
            move |e: std::io::Error| ClientError::Transport(format!("{stage}: {e}"))
        };
        writeln!(self.writer, "{line}").map_err(transport("send"))?;
        self.writer.flush().map_err(transport("send"))?;
        let mut reply = String::new();
        let n = self
            .reader
            .read_line(&mut reply)
            .map_err(transport("recv"))?;
        if n == 0 {
            return Err(ClientError::Transport("server closed the connection".into()));
        }
        Ok(reply.trim_end().to_string())
    }

    /// Solves `inst` remotely. `Err` carries the server's message for
    /// rejected requests (overload, invalid) or transport failures.
    pub fn solve(
        &mut self,
        inst: &Instance,
        epsilon: Option<f64>,
        deadline: Option<Duration>,
    ) -> Result<ClientReply, String> {
        self.solve_detailed(inst, epsilon, deadline)
            .map_err(|e| e.to_string())
    }

    /// [`Client::solve`] with the failure mode preserved: transport
    /// errors (fail over to another worker) vs server `err` lines
    /// (the connection still works).
    pub fn solve_detailed(
        &mut self,
        inst: &Instance,
        epsilon: Option<f64>,
        deadline: Option<Duration>,
    ) -> Result<ClientReply, ClientError> {
        let line = proto::format_solve_request(&SolveRequest {
            instance: inst.clone(),
            epsilon,
            deadline,
        });
        let reply_line = self.roundtrip(&line)?;
        let reply: OkReply = match proto::parse_response(&reply_line) {
            Ok(reply) => reply,
            Err(msg) if reply_line.starts_with("err") => return Err(ClientError::Server(msg)),
            Err(msg) => return Err(ClientError::Transport(format!("protocol: {msg}"))),
        };
        if reply.assignment.len() != inst.num_jobs() {
            return Err(ClientError::Transport(format!(
                "protocol: assignment covers {} jobs, instance has {}",
                reply.assignment.len(),
                inst.num_jobs()
            )));
        }
        Ok(ClientReply {
            makespan: reply.makespan,
            target: reply.target,
            engine: reply.engine,
            degraded: reply.degraded,
            cache_hits: reply.cache_hits,
            cache_misses: reply.cache_misses,
            queue_wait_us: reply.queue_wait_us,
            solve_us: reply.solve_us,
            guarantee: reply.guarantee,
            gap_ppm: reply.gap_ppm,
            schedule: Schedule::new(reply.assignment, inst.machines()),
        })
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), String> {
        match self.roundtrip("ping").map_err(|e| e.to_string())?.as_str() {
            "pong" => Ok(()),
            other => Err(format!("unexpected ping reply `{other}`")),
        }
    }

    /// Liveness/load snapshot — the cluster heartbeat's round-trip.
    pub fn health(&mut self) -> Result<HealthReply, ClientError> {
        let line = self.roundtrip("health")?;
        match proto::parse_health_response(&line) {
            Ok(reply) => Ok(reply),
            Err(msg) if line.starts_with("err") => Err(ClientError::Server(msg)),
            Err(msg) => Err(ClientError::Transport(format!("protocol: {msg}"))),
        }
    }

    /// Digest of the worker's warm log: high-water sequence number plus
    /// a `(key_hash, seq)` pair per live entry. The coordinator's
    /// rebalance planner diffs this against ownership to decide what to
    /// pull.
    pub fn warm_digest(&mut self) -> Result<pcmax_warmsync::WarmDigest, ClientError> {
        let line = self.roundtrip("warm-digest")?;
        match proto::parse_warm_digest_reply(&line) {
            Ok(digest) => Ok(digest),
            Err(msg) if line.starts_with("err") => Err(ClientError::Server(msg)),
            Err(msg) => Err(ClientError::Transport(format!("protocol: {msg}"))),
        }
    }

    /// Pulls the warm entries with `seq > since_seq` whose key hash falls
    /// in `lo..=hi`, checksums re-verified on receipt.
    pub fn warm_pull(
        &mut self,
        since_seq: u64,
        lo: u64,
        hi: u64,
    ) -> Result<Vec<pcmax_warmsync::ShipEntry>, ClientError> {
        let line = self.roundtrip(&proto::format_warm_pull_request(since_seq, lo, hi))?;
        match proto::parse_warm_pull_reply(&line) {
            Ok(entries) => Ok(entries),
            Err(msg) if line.starts_with("err") => Err(ClientError::Server(msg)),
            Err(msg) => Err(ClientError::Transport(format!("protocol: {msg}"))),
        }
    }

    /// Ships `entries` into the peer's warm log. Returns
    /// `(accepted, rejected)` — rejects are per-entry (bad checksum or
    /// undecodable payload), never a whole-push failure.
    pub fn warm_push(
        &mut self,
        entries: &[pcmax_warmsync::ShipEntry],
    ) -> Result<(u64, u64), ClientError> {
        let line = self.roundtrip(&proto::format_warm_push_request(entries))?;
        match proto::parse_warm_push_reply(&line) {
            Ok(counts) => Ok(counts),
            Err(msg) if line.starts_with("err") => Err(ClientError::Server(msg)),
            Err(msg) => Err(ClientError::Transport(format!("protocol: {msg}"))),
        }
    }

    /// Raw `stats …` line from the server.
    pub fn stats_line(&mut self) -> Result<String, String> {
        let line = self.roundtrip("stats").map_err(|e| e.to_string())?;
        if line.starts_with("stats ") {
            Ok(line)
        } else {
            Err(format!("unexpected stats reply `{line}`"))
        }
    }

    /// The server's stats snapshot as its JSON payload (the `stats `
    /// prefix stripped).
    pub fn stats_json(&mut self) -> Result<String, String> {
        let line = self.stats_line()?;
        let json = line["stats ".len()..].to_string();
        if json.starts_with('{') && json.ends_with('}') {
            Ok(json)
        } else {
            Err(format!("stats payload is not a JSON object: `{json}`"))
        }
    }
}
