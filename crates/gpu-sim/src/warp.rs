//! Warp descriptions and their construction from per-thread work.

use crate::mem::warp_transactions;
use crate::spec::DeviceSpec;
use serde::{Deserialize, Serialize};

/// The execution profile of one warp: everything the engine needs to
/// charge time for it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WarpDesc {
    /// Threads with real work (≤ warp size). Inactive lanes still occupy
    /// the slot — that is the under-occupancy cost of tiny launches.
    pub active_threads: usize,
    /// Lockstep compute cycles: the maximum op count over the warp's
    /// threads times the device CPI (divergence makes the slowest thread
    /// gate the warp).
    pub compute_cycles: u64,
    /// Global-memory transactions after coalescing analysis.
    pub transactions: u64,
    /// Raw access count (for bus-utilisation metrics: transactions ≤
    /// accesses, equality = fully uncoalesced).
    pub accesses: u64,
}

impl WarpDesc {
    /// Total cycles this warp occupies an issue slot.
    pub fn cycles(&self, spec: &DeviceSpec) -> f64 {
        self.compute_cycles as f64 * spec.cycles_per_op
            + self.transactions as f64 * spec.cycles_per_transaction()
    }
}

/// Builds [`WarpDesc`]s from per-thread work, grouping threads into warps
/// of `spec.warp_size` in launch order (thread id = blockIdx·blockDim +
/// threadIdx, exactly how Algorithm 5 maps configurations to threads).
pub struct WarpBuilder<'a> {
    spec: &'a DeviceSpec,
    /// (ops, addresses) per pending thread.
    pending: Vec<(u64, Vec<u64>)>,
    warps: Vec<WarpDesc>,
}

impl<'a> WarpBuilder<'a> {
    /// Creates a builder grouping threads by `spec.warp_size`.
    pub fn new(spec: &'a DeviceSpec) -> Self {
        Self {
            spec,
            pending: Vec::with_capacity(spec.warp_size),
            warps: Vec::new(),
        }
    }

    /// Adds one thread with `ops` compute operations and its global-memory
    /// byte addresses in program order.
    pub fn thread(&mut self, ops: u64, addresses: Vec<u64>) {
        self.pending.push((ops, addresses));
        if self.pending.len() == self.spec.warp_size {
            self.flush_warp();
        }
    }

    fn flush_warp(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let active = self.pending.len();
        let compute = self.pending.iter().map(|(o, _)| *o).max().unwrap_or(0);
        let accesses: u64 = self.pending.iter().map(|(_, a)| a.len() as u64).sum();
        let per_thread: Vec<Vec<u64>> =
            self.pending.drain(..).map(|(_, a)| a).collect();
        let transactions = warp_transactions(&per_thread, self.spec.cacheline_bytes);
        self.warps.push(WarpDesc {
            active_threads: active,
            compute_cycles: compute,
            transactions,
            accesses,
        });
    }

    /// Finishes the trailing partial warp and returns all warps.
    pub fn finish(mut self) -> Vec<WarpDesc> {
        self.flush_warp();
        self.warps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_threads_into_warps_of_32() {
        let spec = DeviceSpec::k40();
        let mut b = WarpBuilder::new(&spec);
        for i in 0..70 {
            b.thread(i as u64, vec![]);
        }
        let warps = b.finish();
        assert_eq!(warps.len(), 3);
        assert_eq!(warps[0].active_threads, 32);
        assert_eq!(warps[2].active_threads, 6);
        // Lockstep: warp compute = max thread ops.
        assert_eq!(warps[0].compute_cycles, 31);
        assert_eq!(warps[1].compute_cycles, 63);
        assert_eq!(warps[2].compute_cycles, 69);
    }

    #[test]
    fn imbalance_gates_the_warp() {
        let spec = DeviceSpec::k40();
        let mut b = WarpBuilder::new(&spec);
        b.thread(1000, vec![]);
        for _ in 0..31 {
            b.thread(1, vec![]);
        }
        let warps = b.finish();
        assert_eq!(warps.len(), 1);
        assert_eq!(warps[0].compute_cycles, 1000);
    }

    #[test]
    fn coalesced_vs_strided_transactions() {
        let spec = DeviceSpec::k40();
        // Coalesced: thread i reads word i.
        let mut b = WarpBuilder::new(&spec);
        for i in 0..32u64 {
            b.thread(1, vec![i * 4]);
        }
        let coalesced = b.finish()[0];
        // Strided: thread i reads word i·1024.
        let mut b = WarpBuilder::new(&spec);
        for i in 0..32u64 {
            b.thread(1, vec![i * 4096]);
        }
        let strided = b.finish()[0];
        assert_eq!(coalesced.transactions, 1);
        assert_eq!(strided.transactions, 32);
        assert!(strided.cycles(&spec) > 10.0 * coalesced.cycles(&spec));
    }

    #[test]
    fn empty_builder_yields_no_warps() {
        let spec = DeviceSpec::k40();
        assert!(WarpBuilder::new(&spec).finish().is_empty());
    }

    #[test]
    fn cycles_combine_compute_and_memory() {
        let spec = DeviceSpec::k40();
        let w = WarpDesc {
            active_threads: 32,
            compute_cycles: 100,
            transactions: 2,
            accesses: 64,
        };
        let expect = 100.0 * spec.cycles_per_op + 2.0 * spec.cycles_per_transaction();
        assert!((w.cycles(&spec) - expect).abs() < 1e-9);
    }
}
