//! The warmsync engine: coordinator-mediated warm-state replication,
//! membership-change rebalance, and the elastic worker lifecycle.
//!
//! Workers are pure servers — they never dial each other. The
//! coordinator relays instead: it `warm-pull`s the unshipped suffix
//! from a donor and `warm-push`es the entries to their targets, so the
//! whole replication topology lives in one place and a worker needs no
//! peer discovery.
//!
//! One [`Coordinator::sync_warm`] round (heartbeat-driven, also
//! callable directly by tests and `pcmax bench-cluster --churn`):
//!
//! 1. **Membership diff → rebalance.** The live id set is compared
//!    against the set of the previous round. On any change (join,
//!    leave, mark-down, revival) the planner computes
//!    [`pcmax_warmsync::moved_set`] over every known warm key hash —
//!    exactly the keys whose rendezvous primary changed — and relays
//!    each moved key from a live holder (previous owner or any replica)
//!    to its new owner, coalescing per-donor pulls into the minimal
//!    [`pcmax_warmsync::pull_ranges`]. A joining worker therefore
//!    serves its first request for a migrated warm key from shipped
//!    state, not a cold DP solve.
//! 2. **Digest refresh.** For each live worker whose heartbeat-reported
//!    `warm_seq` differs from the cached digest's, a fresh
//!    `warm-digest` is fetched; unchanged workers cost nothing. The
//!    digests feed the holder map that deduplicates pushes (an entry is
//!    never re-shipped to a worker already holding its key).
//! 3. **Suffix shipping (replication factor R).** For each live worker
//!    whose `warm_seq` is past its replication watermark, the
//!    coordinator pulls `seq > watermark` and pushes every entry to the
//!    first `R − 1` rendezvous successors for its key hash that do not
//!    already hold it. Receivers append under their own local seq and
//!    charge their replica byte budget (oldest-first eviction), so a
//!    replica's disk share is bounded.
//! 4. **Replication repair.** Every known key must be held by its
//!    top-`R` live owners; missing copies are relayed from a holder.
//!    Free once converged, this is what tops a joiner or a revived
//!    worker back up to every key it is now a successor for.
//!
//! The elastic step ([`Coordinator::elastic_step`]) runs after sync
//! when an [`ElasticPolicy`] is configured and a [`Lifecycle`] is
//! registered: sustained fleet-wide pressure or queue depth spawns a
//! worker; sustained idleness drains (final relay of solely-owned
//! entries) and retires the worker with the least warm state.

use crate::coordinator::Coordinator;
use crate::ring::rank_ids;
use crate::worker::WorkerNode;
use pcmax_serve::{Client, ClientError};
use pcmax_warmsync::{counters as wsc, moved_set, pull_ranges, ShipEntry};
use std::collections::{HashMap, HashSet};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

/// Spawn/retire policy for the elastic lifecycle. All thresholds are
/// evaluated per heartbeat over the *live* fleet and must hold for
/// [`ElasticPolicy::sustained_beats`] consecutive beats before the
/// coordinator acts, so a one-beat spike never churns workers.
#[derive(Debug, Clone)]
pub struct ElasticPolicy {
    /// Spawn when mean live-worker pressure is at or above this.
    pub spawn_above_pct: u64,
    /// … or when the summed queue depth is at or above this.
    pub spawn_queue_depth: u64,
    /// Retire when mean pressure is at or below this and queues are
    /// empty.
    pub retire_below_pct: u64,
    /// Consecutive hot/cold beats required before acting.
    pub sustained_beats: u32,
    /// Never retire below this many live workers.
    pub min_workers: usize,
    /// Never spawn above this many live workers.
    pub max_workers: usize,
}

impl Default for ElasticPolicy {
    fn default() -> Self {
        Self {
            spawn_above_pct: 80,
            spawn_queue_depth: 64,
            retire_below_pct: 5,
            sustained_beats: 4,
            min_workers: 1,
            max_workers: 8,
        }
    }
}

/// How a deployment actually starts and stops workers. The coordinator
/// decides *when* (policy), the lifecycle implements *how*
/// (process/container/in-process service). [`crate::LocalCluster`]
/// implements it by spawning and stopping in-process workers.
pub trait Lifecycle: Send + Sync {
    /// Starts a new worker and returns its id and serving address, or
    /// `None` if the deployment cannot grow right now.
    fn spawn_worker(&self) -> Option<(String, SocketAddr)>;
    /// Stops the worker with `id`. Called after the coordinator has
    /// drained its solely-owned warm entries and deregistered it.
    fn retire_worker(&self, id: &str);
}

/// What one [`Coordinator::sync_warm`] round did, for tests and the
/// churn benchmark.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SyncOutcome {
    /// Entries pushed to replicas or new owners this round.
    pub shipped: u64,
    /// Entries pulled from donors this round.
    pub pulled: u64,
    /// Keys relayed to a new rendezvous owner by the rebalance pass.
    pub moved_keys: u64,
    /// Whether a membership change triggered a rebalance pass.
    pub rebalanced: bool,
}

/// The key-hash → holder-ids map built from cached digests.
type Holders = HashMap<u64, HashSet<String>>;

/// Consecutive hot/cold beat counters behind the elastic policy's
/// `sustained_beats` damping.
#[derive(Debug, Default)]
pub(crate) struct ElasticState {
    pub(crate) hot_beats: u32,
    pub(crate) cold_beats: u32,
}

impl Coordinator {
    /// Runs one warmsync round (see the module docs). Serialised by an
    /// internal lock: the heartbeat loop and direct callers (tests,
    /// benchmarks) never interleave rounds. No-op when
    /// `ClusterConfig::warmsync` is off.
    pub fn sync_warm(&self) -> SyncOutcome {
        if !self.config().warmsync {
            return SyncOutcome::default();
        }
        let _round = self.sync_lock.lock().expect("sync lock poisoned");
        let mut outcome = SyncOutcome::default();
        let live = self.live_nodes();
        let mut live_ids: Vec<String> = live.iter().map(|w| w.id.clone()).collect();
        live_ids.sort_unstable();

        self.refresh_digests(&live);
        let mut holders = self.holder_map(&live);

        // Membership diff first: a joining worker should get its moved
        // keys before new-suffix replication spends budget on it.
        let (changed, old_ids) = {
            let mut last = self.last_membership.lock().expect("membership poisoned");
            let old = last.clone();
            let changed = *last != live_ids;
            if changed {
                last.clone_from(&live_ids);
            }
            (changed, old)
        };
        if changed && !old_ids.is_empty() {
            outcome.rebalanced = true;
            self.stats.rebalance_events.inc();
            wsc::add(wsc::REBALANCE_EVENTS, 1);
            self.rebalance(&live, &live_ids, &old_ids, &mut holders, &mut outcome);
        }

        self.ship_suffixes(&live, &live_ids, &mut holders, &mut outcome);
        self.repair_replication(&live, &live_ids, &mut holders, &mut outcome);
        outcome
    }

    fn live_nodes(&self) -> Vec<Arc<WorkerNode>> {
        self.snapshot_workers()
            .into_iter()
            .filter(|w| w.is_up())
            .collect()
    }

    /// Fetches `warm-digest` from every live worker whose reported
    /// `warm_seq` differs from the cached digest's seq. A worker that
    /// has never reported warm state (`warm_seq == 0`) is skipped — its
    /// digest is trivially empty.
    fn refresh_digests(&self, live: &[Arc<WorkerNode>]) {
        for worker in live {
            let seq = worker.warm_seq();
            let cached = worker
                .digest_cache
                .lock()
                .expect("digest cache poisoned")
                .as_ref()
                .map(|(s, _)| *s);
            if cached == Some(seq) || (seq == 0 && cached.is_none()) {
                continue;
            }
            let Ok(mut client) = self.warm_client(worker) else { continue };
            match client.warm_digest() {
                Ok(digest) => {
                    // Cache under the seq the worker itself reports in
                    // the digest, not the (possibly stale) heartbeat
                    // one, so a racing append re-fetches next round.
                    *worker.digest_cache.lock().expect("digest cache poisoned") =
                        Some((digest.max_seq, digest.entries));
                }
                Err(_) => self.note_miss(worker),
            }
        }
    }

    fn holder_map(&self, live: &[Arc<WorkerNode>]) -> Holders {
        let mut holders: Holders = HashMap::new();
        for worker in live {
            let cache = worker.digest_cache.lock().expect("digest cache poisoned");
            if let Some((_, entries)) = cache.as_ref() {
                for &(hash, _) in entries {
                    holders.entry(hash).or_default().insert(worker.id.clone());
                }
            }
        }
        holders
    }

    /// The rebalance pass: relays every warm key whose rendezvous
    /// primary changed (old membership → current) from a live holder to
    /// its new owner. Donor pulls are coalesced into the minimal hash
    /// ranges containing no unmoved donor key.
    fn rebalance(
        &self,
        live: &[Arc<WorkerNode>],
        live_ids: &[String],
        old_ids: &[String],
        holders: &mut Holders,
        outcome: &mut SyncOutcome,
    ) {
        let mut hashes: Vec<u64> = holders.keys().copied().collect();
        hashes.sort_unstable();
        let moved = moved_set(&hashes, owner_fn(old_ids), owner_fn(live_ids));

        // Bucket moved keys by (donor, target): the target is the new
        // primary, the donor any live holder (prefer the old owner so
        // the pull hits the freshest copy).
        let mut buckets: HashMap<(String, String), Vec<u64>> = HashMap::new();
        for key in &moved {
            let Some(holder_set) = holders.get(&key.hash) else { continue };
            if holder_set.contains(&key.to) {
                continue; // already replicated there — nothing to move
            }
            let donor = match &key.from {
                Some(from) if holder_set.contains(from) => from.clone(),
                _ => match holder_set.iter().min() {
                    Some(any) => any.clone(),
                    None => continue,
                },
            };
            buckets
                .entry((donor, key.to.clone()))
                .or_default()
                .push(key.hash);
        }

        let moved_now = self.relay_buckets(live, buckets, holders, outcome);
        outcome.moved_keys += moved_now;
        self.stats.rebalance_keys_moved.add(moved_now);
    }

    /// Restores the replication invariant — every known warm key is
    /// held by its top-`R` live rendezvous owners — by relaying each
    /// missing copy from a live holder. Idempotent and free once
    /// converged (complete holder sets build no buckets); after churn
    /// it is what tops a joiner (or a revived worker) back up to every
    /// key it is now a successor for.
    fn repair_replication(
        &self,
        live: &[Arc<WorkerNode>],
        live_ids: &[String],
        holders: &mut Holders,
        outcome: &mut SyncOutcome,
    ) {
        let replicas = (self.config().replication_factor.max(1) as usize).min(live.len());
        if live.len() < 2 {
            return;
        }
        let id_refs: Vec<&str> = live_ids.iter().map(String::as_str).collect();
        let mut hashes: Vec<u64> = holders.keys().copied().collect();
        hashes.sort_unstable();
        let mut buckets: HashMap<(String, String), Vec<u64>> = HashMap::new();
        for hash in hashes {
            let Some(held) = holders.get(&hash) else { continue };
            let Some(donor) = held.iter().min().cloned() else { continue };
            for target in rank_ids(&id_refs, hash).into_iter().take(replicas) {
                if held.contains(target) {
                    continue;
                }
                buckets
                    .entry((donor.clone(), target.to_string()))
                    .or_default()
                    .push(hash);
            }
        }
        self.relay_buckets(live, buckets, holders, outcome);
    }

    /// Executes `(donor, target) → key hashes` relay buckets: each
    /// bucket's hashes are coalesced into the minimal pull ranges over
    /// the donor's digest, pulled, and pushed to the target. Returns
    /// the number of entries accepted by targets.
    fn relay_buckets(
        &self,
        live: &[Arc<WorkerNode>],
        buckets: HashMap<(String, String), Vec<u64>>,
        holders: &mut Holders,
        outcome: &mut SyncOutcome,
    ) -> u64 {
        let mut total_pushed = 0u64;
        for ((donor_id, target_id), mut bucket) in buckets {
            bucket.sort_unstable();
            bucket.dedup();
            let (Some(donor), Some(target)) = (
                live.iter().find(|w| w.id == donor_id),
                live.iter().find(|w| w.id == target_id),
            ) else {
                continue;
            };
            let donor_keys: Vec<u64> = donor
                .digest_cache
                .lock()
                .expect("digest cache poisoned")
                .as_ref()
                .map(|(_, entries)| entries.iter().map(|&(h, _)| h).collect())
                .unwrap_or_default();
            for (lo, hi) in pull_ranges(&bucket, &donor_keys) {
                let Some(entries) = self.pull_from(donor, 0, lo, hi) else { continue };
                outcome.pulled += entries.len() as u64;
                let pushed = self.push_to(target, &entries);
                outcome.shipped += pushed;
                total_pushed += pushed;
                for entry in &entries {
                    holders
                        .entry(entry.key_hash())
                        .or_default()
                        .insert(target_id.clone());
                }
            }
        }
        total_pushed
    }

    /// Ships each live worker's unshipped warm suffix to the first
    /// `R − 1` rendezvous successors (per entry key) that do not already
    /// hold it.
    fn ship_suffixes(
        &self,
        live: &[Arc<WorkerNode>],
        live_ids: &[String],
        holders: &mut Holders,
        outcome: &mut SyncOutcome,
    ) {
        let replicas = self.config().replication_factor.max(1) as usize;
        if replicas < 2 || live.len() < 2 {
            return;
        }
        let id_refs: Vec<&str> = live_ids.iter().map(String::as_str).collect();
        for donor in live {
            let seq = donor.warm_seq();
            let watermark = donor.synced_seq();
            if seq <= watermark {
                continue;
            }
            let Some(entries) = self.pull_from(donor, watermark, 0, u64::MAX) else {
                continue;
            };
            outcome.pulled += entries.len() as u64;
            let top_seq = entries.iter().map(|e| e.seq).max().unwrap_or(seq);

            // Group entries per target so each target gets one push.
            let mut batches: HashMap<String, Vec<ShipEntry>> = HashMap::new();
            for entry in entries {
                let hash = entry.key_hash();
                let held = holders.entry(hash).or_default();
                held.insert(donor.id.clone());
                for target in rank_ids(&id_refs, hash).into_iter().take(replicas) {
                    if target == donor.id || held.contains(target) {
                        continue;
                    }
                    held.insert(target.to_string());
                    batches.entry(target.to_string()).or_default().push(entry.clone());
                }
            }
            for (target_id, batch) in batches {
                if let Some(target) = live.iter().find(|w| w.id == target_id) {
                    outcome.shipped += self.push_to(target, &batch);
                }
            }
            donor.set_synced_seq(top_seq.max(seq));
        }
    }

    /// One `warm-pull` round-trip against `worker` on a fresh
    /// connection. `None` on transport failure (books a miss).
    fn pull_from(
        &self,
        worker: &Arc<WorkerNode>,
        since_seq: u64,
        lo: u64,
        hi: u64,
    ) -> Option<Vec<ShipEntry>> {
        let mut client = self.warm_client(worker).ok()?;
        let started = Instant::now();
        match client.warm_pull(since_seq, lo, hi) {
            Ok(entries) => {
                let bytes: u64 = entries
                    .iter()
                    .map(|e| (e.key.len() + e.value.len()) as u64)
                    .sum();
                self.stats.warm_entries_pulled.add(entries.len() as u64);
                self.stats.warm_bytes_pulled.add(bytes);
                wsc::add(wsc::ENTRIES_PULLED, entries.len() as u64);
                wsc::add(wsc::BYTES_PULLED, bytes);
                if pcmax_obs::enabled() {
                    let us = started.elapsed().as_micros() as u64;
                    self.stats.pull_us.record(us);
                    pcmax_obs::registry::global()
                        .histogram(wsc::PULL_US)
                        .record(us);
                }
                Some(entries)
            }
            Err(ClientError::Transport(_)) => {
                self.note_miss(worker);
                None
            }
            Err(ClientError::Server(_)) => None,
        }
    }

    /// One `warm-push` round-trip against `worker`. Returns the number
    /// of entries the worker accepted (0 on transport failure).
    fn push_to(&self, worker: &Arc<WorkerNode>, entries: &[ShipEntry]) -> u64 {
        if entries.is_empty() {
            return 0;
        }
        let Ok(mut client) = self.warm_client(worker) else {
            self.note_miss(worker);
            return 0;
        };
        let started = Instant::now();
        match client.warm_push(entries) {
            Ok((accepted, rejected)) => {
                let bytes: u64 = entries
                    .iter()
                    .map(|e| (e.key.len() + e.value.len()) as u64)
                    .sum();
                self.stats.warm_entries_shipped.add(accepted);
                self.stats.warm_bytes_shipped.add(bytes);
                self.stats.warm_push_rejected.add(rejected);
                wsc::add(wsc::ENTRIES_SHIPPED, accepted);
                wsc::add(wsc::BYTES_SHIPPED, bytes);
                if rejected > 0 {
                    wsc::add(wsc::ENTRIES_REJECTED, rejected);
                }
                if pcmax_obs::enabled() {
                    let us = started.elapsed().as_micros() as u64;
                    self.stats.ship_us.record(us);
                    pcmax_obs::registry::global()
                        .histogram(wsc::SHIP_US)
                        .record(us);
                }
                accepted
            }
            Err(ClientError::Transport(_)) => {
                self.note_miss(worker);
                0
            }
            Err(ClientError::Server(_)) => 0,
        }
    }

    fn warm_client(&self, worker: &WorkerNode) -> Result<Client, ClientError> {
        let client = Client::connect_timeout(&worker.addr, self.config().connect_timeout)
            .map_err(|e| ClientError::Transport(format!("connect: {e}")))?;
        let _ = client.set_io_timeout(Some(self.config().io_timeout));
        Ok(client)
    }

    /// One elastic policy evaluation (heartbeat-driven). Requires both
    /// a configured [`ElasticPolicy`] and a registered [`Lifecycle`].
    pub fn elastic_step(&self) {
        let Some(policy) = self.config().elastic.clone() else { return };
        let Some(lifecycle) = self
            .lifecycle
            .lock()
            .expect("lifecycle poisoned")
            .clone()
        else {
            return;
        };
        let live = self.live_nodes();
        if live.is_empty() {
            return;
        }
        let (mut pressure_sum, mut queue_sum) = (0u64, 0u64);
        for worker in &live {
            let state = worker.state();
            pressure_sum += state.pressure_pct;
            queue_sum += state.queue_depth;
        }
        let mean_pressure = pressure_sum / live.len() as u64;
        let hot = mean_pressure >= policy.spawn_above_pct || queue_sum >= policy.spawn_queue_depth;
        let cold = mean_pressure <= policy.retire_below_pct && queue_sum == 0;

        let mut state = self.elastic_state.lock().expect("elastic state poisoned");
        state.hot_beats = if hot { state.hot_beats + 1 } else { 0 };
        state.cold_beats = if cold { state.cold_beats + 1 } else { 0 };

        if state.hot_beats >= policy.sustained_beats && live.len() < policy.max_workers {
            state.hot_beats = 0;
            drop(state);
            if let Some((id, addr)) = lifecycle.spawn_worker() {
                self.add_worker(&id, addr);
                self.stats.elastic_spawns.inc();
                self.event("cluster.elastic", &format!("spawn {id}"));
                // The next sync round's membership diff warms it up.
            }
            return;
        }
        if state.cold_beats >= policy.sustained_beats && live.len() > policy.min_workers {
            state.cold_beats = 0;
            drop(state);
            // Retire the worker with the least warm state — the
            // cheapest drain.
            let victim = live
                .iter()
                .min_by_key(|w| (w.state().warm_entries, w.id.clone()))
                .expect("live is non-empty")
                .id
                .clone();
            self.retire_worker(&victim, lifecycle.as_ref());
        }
    }

    /// Drains and retires `id`: relays its solely-owned warm entries to
    /// their next owners (a rebalance planned as if `id` had already
    /// left, executed while it still serves pulls), then deregisters it
    /// and hands it to the lifecycle to stop.
    pub fn retire_worker(&self, id: &str, lifecycle: &dyn Lifecycle) {
        self.drain_worker(id);
        self.remove_worker(id);
        lifecycle.retire_worker(id);
        self.stats.elastic_retires.inc();
        self.event("cluster.elastic", &format!("retire {id}"));
    }

    /// The final warm-push of retirement: every key whose only live
    /// holder is `id` is relayed to its post-departure rendezvous
    /// owner, while `id` is still up to serve the pulls.
    pub fn drain_worker(&self, id: &str) {
        if !self.config().warmsync {
            return;
        }
        let _round = self.sync_lock.lock().expect("sync lock poisoned");
        let live = self.live_nodes();
        let Some(victim) = live.iter().find(|w| w.id == id).cloned() else { return };
        self.refresh_digests(&live);
        let holders = self.holder_map(&live);
        let survivor_ids: Vec<String> = live
            .iter()
            .filter(|w| w.id != id)
            .map(|w| w.id.clone())
            .collect();
        if survivor_ids.is_empty() {
            return;
        }
        let id_refs: Vec<&str> = survivor_ids.iter().map(String::as_str).collect();
        let mut solely_owned: Vec<u64> = holders
            .iter()
            .filter(|(_, held)| held.len() == 1 && held.contains(id))
            .map(|(&hash, _)| hash)
            .collect();
        solely_owned.sort_unstable();
        if solely_owned.is_empty() {
            return;
        }
        let donor_keys: Vec<u64> = victim
            .digest_cache
            .lock()
            .expect("digest cache poisoned")
            .as_ref()
            .map(|(_, entries)| entries.iter().map(|&(h, _)| h).collect())
            .unwrap_or_default();
        let mut outcome = SyncOutcome::default();
        for (lo, hi) in pull_ranges(&solely_owned, &donor_keys) {
            let Some(entries) = self.pull_from(&victim, 0, lo, hi) else { continue };
            outcome.pulled += entries.len() as u64;
            // Each entry goes to its new primary under the survivor set.
            let mut batches: HashMap<String, Vec<ShipEntry>> = HashMap::new();
            for entry in entries {
                if let Some(&owner) = rank_ids(&id_refs, entry.key_hash()).first() {
                    batches.entry(owner.to_string()).or_default().push(entry);
                }
            }
            for (target_id, batch) in batches {
                if let Some(target) = live.iter().find(|w| w.id == target_id) {
                    outcome.shipped += self.push_to(target, &batch);
                }
            }
        }
        self.stats.rebalance_keys_moved.add(outcome.shipped);
        self.event("cluster.ring", &format!("drain {id}"));
    }
}

/// A rendezvous primary-owner closure over `ids`, the shape
/// [`moved_set`] expects.
fn owner_fn(ids: &[String]) -> impl Fn(u64) -> Option<String> + '_ {
    move |hash| {
        let refs: Vec<&str> = ids.iter().map(String::as_str).collect();
        rank_ids(&refs, hash).first().map(|s| s.to_string())
    }
}
