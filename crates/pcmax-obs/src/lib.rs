#![warn(missing_docs)]

//! Zero-dependency observability for the pcmax workspace.
//!
//! The paper's contribution is a performance claim, so the pipeline needs
//! first-class measurement: where does a solve spend its time — bisection
//! probes, rounding, DP levels — and what do serve-path latencies look
//! like under load? This crate provides the four primitives the rest of
//! the workspace instruments itself with:
//!
//! * [`counter::Counter`] — named atomic counters;
//! * [`hist::Histogram`] — log₂-bucketed value histograms (latencies in
//!   µs, batch sizes, …) with cheap quantile estimates;
//! * [`span::SpanNode`] — hierarchical span trees for `pcmax trace`;
//! * [`timeline::Timeline`] — a bounded event log for kernel/stream
//!   timelines from the GPU simulator.
//!
//! Everything renders to JSON through the hand-rolled writer in [`json`]
//! (the workspace's serde is an offline no-op shim, so wire formats are
//! written by hand).
//!
//! ## Recording is disabled by default
//!
//! Every `record` call first checks one relaxed [`AtomicBool`] — the
//! entire cost of the instrumentation on an un-instrumented run. Callers
//! that want data (the `pcmax trace`/`serve`/`bench-serve` commands,
//! tests asserting on histograms) opt in with [`set_enabled`]`(true)`.
//! Timestamps follow the same rule: [`Timer::start`] does not even read
//! the clock while recording is off.

pub mod counter;
pub mod hist;
pub mod json;
pub mod registry;
pub mod span;
pub mod timeline;

pub use counter::Counter;
pub use hist::{Bucket, Histogram, HistogramSnapshot};
pub use json::JsonWriter;
pub use span::SpanNode;
pub use timeline::{Timeline, TimelineEvent};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether recording is enabled (one relaxed atomic load — the full cost
/// of every instrumentation site while disabled).
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on or off, process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// A stopwatch that only reads the clock while recording is enabled.
///
/// `Timer::start()` on a disabled recorder is a single atomic load;
/// [`Timer::elapsed_us`] then reports 0. This is how instrumented code
/// threads "elapsed time, or zero if nobody is measuring" through
/// existing stats structs without branching at every call site.
#[derive(Debug, Clone, Copy)]
pub struct Timer(Option<std::time::Instant>);

impl Timer {
    /// Starts the stopwatch if recording is enabled.
    #[inline]
    pub fn start() -> Self {
        Self(enabled().then(std::time::Instant::now))
    }

    /// A stopwatch that is always off (for default-constructed stats).
    #[inline]
    pub fn off() -> Self {
        Self(None)
    }

    /// Whether this stopwatch is actually measuring.
    #[inline]
    pub fn is_recording(&self) -> bool {
        self.0.is_some()
    }

    /// Microseconds since [`Timer::start`], or 0 when off.
    #[inline]
    pub fn elapsed_us(&self) -> u64 {
        self.0.map_or(0, |t| t.elapsed().as_micros() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The only test in this binary that touches the global flag, so the
    // two phases stay sequential and cannot race other tests.
    #[test]
    fn flag_gates_the_timer() {
        set_enabled(false);
        let off = Timer::start();
        assert!(!off.is_recording());
        assert_eq!(off.elapsed_us(), 0);

        set_enabled(true);
        assert!(enabled());
        let on = Timer::start();
        assert!(on.is_recording());
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(on.elapsed_us() >= 1_000);
        set_enabled(false);
        // An already-started timer keeps measuring after the flag drops.
        assert!(on.elapsed_us() >= 1_000);
    }
}
