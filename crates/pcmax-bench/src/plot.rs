//! Minimal SVG line charts — enough to draw the paper's figures from the
//! harness CSVs without pulling in a plotting dependency.
//!
//! Log-log axes (both table sizes and modeled times span orders of
//! magnitude, like the paper's Fig. 3), one polyline per series, a simple
//! legend, and tick labels in scientific-ish notation.

use std::fmt::Write as _;

/// One named series of `(x, y)` points.
pub struct Series {
    /// Legend label.
    pub name: String,
    /// Data points (must be positive for the log axes).
    pub points: Vec<(f64, f64)>,
}

/// Brand-neutral categorical palette (10 distinguishable hues).
const PALETTE: [&str; 10] = [
    "#4269d0", "#efb118", "#ff725c", "#6cc5b0", "#3ca951", "#ff8ab7", "#a463f2", "#97bbf5",
    "#9c6b4e", "#9498a0",
];

fn log_pos(v: f64, lo: f64, hi: f64, px_lo: f64, px_hi: f64) -> f64 {
    let t = (v.ln() - lo.ln()) / (hi.ln() - lo.ln());
    px_lo + t * (px_hi - px_lo)
}

/// Renders a log-log line chart as a standalone SVG document.
///
/// # Panics
///
/// Panics if a series contains a non-positive coordinate (log axes).
pub fn line_chart(title: &str, x_label: &str, y_label: &str, series: &[Series]) -> String {
    const W: f64 = 760.0;
    const H: f64 = 480.0;
    const ML: f64 = 70.0; // margins
    const MR: f64 = 150.0;
    const MT: f64 = 40.0;
    const MB: f64 = 55.0;

    let all: Vec<(f64, f64)> = series.iter().flat_map(|s| s.points.iter().copied()).collect();
    assert!(!all.is_empty(), "nothing to plot");
    assert!(
        all.iter().all(|&(x, y)| x > 0.0 && y > 0.0),
        "log axes need positive data"
    );
    let (mut x_lo, mut x_hi) = (f64::INFINITY, 0.0f64);
    let (mut y_lo, mut y_hi) = (f64::INFINITY, 0.0f64);
    for &(x, y) in &all {
        x_lo = x_lo.min(x);
        x_hi = x_hi.max(x);
        y_lo = y_lo.min(y);
        y_hi = y_hi.max(y);
    }
    // Pad the y range a little; degenerate ranges get a factor of 2.
    if y_lo == y_hi {
        y_lo /= 2.0;
        y_hi *= 2.0;
    }
    if x_lo == x_hi {
        x_lo /= 2.0;
        x_hi *= 2.0;
    }

    let px = |x: f64| log_pos(x, x_lo, x_hi, ML, W - MR);
    let py = |y: f64| log_pos(y, y_lo, y_hi, H - MB, MT);

    let mut svg = String::new();
    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{W}" height="{H}" viewBox="0 0 {W} {H}" font-family="sans-serif" font-size="11">"#
    );
    let _ = write!(svg, r#"<rect width="{W}" height="{H}" fill="white"/>"#);
    let _ = write!(
        svg,
        r#"<text x="{}" y="20" text-anchor="middle" font-size="14">{}</text>"#,
        (ML + W - MR) / 2.0,
        xml_escape(title)
    );

    // Axes box.
    let _ = write!(
        svg,
        r##"<rect x="{ML}" y="{MT}" width="{}" height="{}" fill="none" stroke="#888"/>"##,
        W - ML - MR,
        H - MT - MB
    );

    // Decade ticks.
    let mut decade = 10f64.powf(x_lo.log10().floor());
    while decade <= x_hi * 1.0001 {
        if decade >= x_lo * 0.9999 {
            let x = px(decade);
            let _ = write!(
                svg,
                r##"<line x1="{x:.1}" y1="{MT}" x2="{x:.1}" y2="{:.1}" stroke="#ddd"/>"##,
                H - MB
            );
            let _ = write!(
                svg,
                r#"<text x="{x:.1}" y="{:.1}" text-anchor="middle">1e{}</text>"#,
                H - MB + 16.0,
                decade.log10().round() as i64
            );
        }
        decade *= 10.0;
    }
    let mut decade = 10f64.powf(y_lo.log10().floor());
    while decade <= y_hi * 1.0001 {
        if decade >= y_lo * 0.9999 {
            let y = py(decade);
            let _ = write!(
                svg,
                r##"<line x1="{ML}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#ddd"/>"##,
                W - MR
            );
            let _ = write!(
                svg,
                r#"<text x="{:.1}" y="{:.1}" text-anchor="end">1e{}</text>"#,
                ML - 6.0,
                y + 4.0,
                decade.log10().round() as i64
            );
        }
        decade *= 10.0;
    }

    // Axis labels.
    let _ = write!(
        svg,
        r#"<text x="{}" y="{}" text-anchor="middle">{}</text>"#,
        (ML + W - MR) / 2.0,
        H - 12.0,
        xml_escape(x_label)
    );
    let _ = write!(
        svg,
        r#"<text x="16" y="{}" text-anchor="middle" transform="rotate(-90 16 {})">{}</text>"#,
        (MT + H - MB) / 2.0,
        (MT + H - MB) / 2.0,
        xml_escape(y_label)
    );

    // Series.
    for (i, s) in series.iter().enumerate() {
        let color = PALETTE[i % PALETTE.len()];
        let pts: Vec<String> = s
            .points
            .iter()
            .map(|&(x, y)| format!("{:.1},{:.1}", px(x), py(y)))
            .collect();
        let _ = write!(
            svg,
            r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="1.8"/>"#,
            pts.join(" ")
        );
        for &(x, y) in &s.points {
            let _ = write!(
                svg,
                r#"<circle cx="{:.1}" cy="{:.1}" r="2.4" fill="{color}"/>"#,
                px(x),
                py(y)
            );
        }
        // Legend entry.
        let ly = MT + 14.0 + i as f64 * 16.0;
        let _ = write!(
            svg,
            r#"<line x1="{:.1}" y1="{ly:.1}" x2="{:.1}" y2="{ly:.1}" stroke="{color}" stroke-width="2"/>"#,
            W - MR + 10.0,
            W - MR + 30.0
        );
        let _ = write!(
            svg,
            r#"<text x="{:.1}" y="{:.1}">{}</text>"#,
            W - MR + 36.0,
            ly + 4.0,
            xml_escape(&s.name)
        );
    }
    svg.push_str("</svg>");
    svg
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Series> {
        vec![
            Series {
                name: "OMP28".into(),
                points: vec![(100.0, 0.1), (1000.0, 5.0), (10000.0, 300.0)],
            },
            Series {
                name: "GPU-DIM6".into(),
                points: vec![(100.0, 2.0), (1000.0, 12.0), (10000.0, 90.0)],
            },
        ]
    }

    #[test]
    fn chart_contains_series_and_structure() {
        let svg = line_chart("Fig 3 & more", "table size", "ms", &sample());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("OMP28"));
        assert!(svg.contains("GPU-DIM6"));
        assert!(svg.contains("Fig 3 &amp; more"), "title escaped");
        // 6 data markers.
        assert_eq!(svg.matches("<circle").count(), 6);
    }

    #[test]
    fn log_positions_are_monotone() {
        let svg = line_chart("t", "x", "y", &sample());
        // Cheap sanity: decade gridlines for x = 1e2..1e4 appear.
        assert!(svg.contains(">1e2<"));
        assert!(svg.contains(">1e4<"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_values() {
        line_chart(
            "t",
            "x",
            "y",
            &[Series {
                name: "bad".into(),
                points: vec![(0.0, 1.0)],
            }],
        );
    }

    #[test]
    #[should_panic(expected = "nothing to plot")]
    fn rejects_empty() {
        line_chart("t", "x", "y", &[]);
    }
}
