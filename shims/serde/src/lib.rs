//! Offline shim for serde.
//!
//! `Serialize` and `Deserialize` are marker traits with blanket impls,
//! and the derives (re-exported from the sibling `serde_derive` shim) are
//! no-ops. The workspace keeps its `#[derive(Serialize, Deserialize)]`
//! annotations — they document which types are wire-visible and become
//! real implementations the moment the genuine serde crate is restored
//! in `[workspace.dependencies]` — but no actual wire format exists until
//! then.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`. Blanket-implemented so trait
/// bounds written against it compile.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize<'de>`. Blanket-implemented so
/// trait bounds written against it compile.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: ?Sized> DeserializeOwned for T {}

#[cfg(test)]
mod tests {
    // The trait and the derive macro share the name `Serialize` (type vs
    // macro namespace), exactly like real serde with the `derive` feature.
    use super::{Deserialize, Serialize};

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    struct Point {
        x: u64,
        y: u64,
    }

    fn assert_serialize<T: super::Serialize>(_: &T) {}

    #[test]
    fn derives_and_bounds_compile() {
        let p = Point { x: 1, y: 2 };
        assert_serialize(&p);
        assert_eq!(p, Point { x: 1, y: 2 });
    }
}
