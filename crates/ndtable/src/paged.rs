//! Paged view of a blocked table: blocks are pages in a
//! [`pcmax_store::TieredStore`].
//!
//! Algorithm 4's block-major reorganisation makes every block a
//! contiguous, independently transferable run of cells — exactly a page.
//! [`PagedTable`] glues a [`BlockedLayout`] to a store handle so a
//! block-level sweep can commit each finished block as a page and fault
//! dependency pages back in, instead of holding the whole table resident.
//! Only the frontier block-levels need RAM; everything colder demotes to
//! the store's disk tier under its byte budget — this is what makes
//! tables exceeding RAM solvable at all.

use crate::blocked::BlockedLayout;
use pcmax_store::{StoreError, TieredStore};
use std::sync::Arc;

/// A blocked table whose blocks live in a tiered page store.
///
/// Page ids are the flat block indices of the layout's grid, so the
/// store's spill files correspond one-to-one to the paper's blocks.
#[derive(Debug)]
pub struct PagedTable {
    layout: BlockedLayout,
    store: Arc<TieredStore>,
}

impl PagedTable {
    /// Wraps `store` as the backing for tables of `layout`. The handle
    /// is shared: callers keep their clone to read
    /// [`TieredStore::stats`] after the sweep.
    pub fn new(layout: BlockedLayout, store: Arc<TieredStore>) -> Self {
        Self { layout, store }
    }

    /// The block layout pages map onto.
    pub fn layout(&self) -> &BlockedLayout {
        &self.layout
    }

    /// The backing store (for stats and budget introspection).
    pub fn store(&self) -> &TieredStore {
        &self.store
    }

    /// Unwraps the backing store handle.
    pub fn into_store(self) -> Arc<TieredStore> {
        self.store
    }

    /// Commits a finished block's cells as the page `block_flat`.
    ///
    /// # Panics
    ///
    /// Panics if `cells` is not exactly one block long.
    pub fn commit_block(&self, block_flat: usize, cells: Vec<u32>) -> Result<(), StoreError> {
        assert_eq!(
            cells.len(),
            self.layout.cells_per_block(),
            "page must be exactly one block"
        );
        self.store.put(block_flat as u64, Arc::new(cells))
    }

    /// Faults the page of block `block_flat` in from the store.
    ///
    /// A missing page is [`StoreError::Corrupt`]: the sweep commits every
    /// block of a level before any later level reads it, so absence means
    /// the store lost a page.
    pub fn fault_block(&self, block_flat: usize) -> Result<Arc<Vec<u32>>, StoreError> {
        self.store
            .get(block_flat as u64)?
            .ok_or_else(|| StoreError::Corrupt {
                detail: format!("page {block_flat} missing from store"),
            })
    }

    /// Gathers every page back into one row-major table (the paged
    /// counterpart of [`BlockedLayout::scatter_back`]). Faults pages one
    /// at a time, so peak residency stays one block above the budget.
    pub fn gather(&self) -> Result<Vec<u32>, StoreError> {
        let shape = self.layout.shape();
        let cpb = self.layout.cells_per_block();
        let mut out = vec![0u32; shape.size()];
        let mut idx = vec![0usize; shape.ndim()];
        for bf in 0..self.layout.num_blocks() {
            let page = self.fault_block(bf)?;
            for (in_flat, &val) in page.iter().enumerate() {
                self.layout.unblock_into(bf * cpb + in_flat, &mut idx);
                out[shape.flatten(&idx)] = val;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::Divisor;
    use crate::shape::Shape;
    use pcmax_store::{StoreBudget, StoreConfig};
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ndtable-paged-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn layout(extents: &[usize], divisor: &[usize]) -> BlockedLayout {
        let shape = Shape::new(extents);
        let d = Divisor::from_parts(&shape, divisor);
        BlockedLayout::new(shape, d)
    }

    #[test]
    fn commit_fault_gather_roundtrips_under_spill_pressure() {
        let dir = tmp_dir("roundtrip");
        let l = layout(&[6, 4, 6], &[3, 2, 2]);
        let cpb = l.cells_per_block();
        // Budget of two pages for a 12-page table: most blocks must spill.
        let store = Arc::new(
            TieredStore::open(&StoreConfig {
                budget: StoreBudget::bytes(2 * pcmax_store::page_bytes(cpb)),
                spill_dir: Some(dir.clone()),
            })
            .unwrap(),
        );
        let paged = PagedTable::new(l.clone(), store);

        // Reference data: row-major cell values = their own flat index.
        let data: Vec<u32> = (0..l.shape().size() as u32).collect();
        let blocked = l.reorganize(&data);
        for bf in 0..l.num_blocks() {
            let region = l.block_region(bf);
            paged.commit_block(bf, blocked[region].to_vec()).unwrap();
        }
        let stats = paged.store().stats();
        assert!(stats.demotions > 0, "2-page budget must spill: {stats:?}");

        // Faulting any block returns exactly its contiguous cells.
        for bf in [0, 5, l.num_blocks() - 1] {
            let page = paged.fault_block(bf).unwrap();
            assert_eq!(&*page, &blocked[l.block_region(bf)]);
        }
        assert_eq!(paged.gather().unwrap(), data);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_page_is_a_structured_error() {
        let paged = PagedTable::new(
            layout(&[4, 4], &[2, 2]),
            Arc::new(TieredStore::open(&StoreConfig::default()).unwrap()),
        );
        assert!(matches!(
            paged.fault_block(1),
            Err(StoreError::Corrupt { .. })
        ));
    }
}
