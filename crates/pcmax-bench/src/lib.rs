//! Benchmark harness: regenerates every figure and table of the paper.
//!
//! Binaries (run with `--release`; each prints the paper-format rows and
//! writes a CSV next to the repository under `results/`):
//!
//! * `fig3 [--group a|b|c|all] [--naive]` — average modeled running time
//!   vs DP-table size, series OMP16/OMP28/GPU-DIM3..9 (Fig. 3);
//! * `fig4` — modeled GPU time vs number of partitioned dimensions, one
//!   series per non-zero-dimension variant of six table sizes (Fig. 4);
//! * `tables_i_vi` — block dimensional sizes for the published table
//!   shapes, checked against the paper's values (Tables I–VI);
//! * `table_vii` — quarter-split vs bisection: iteration counts and
//!   modeled runtimes on five instances (Table VII).
//!
//! The library half holds what the binaries share: shape selection
//! ([`shapes`]), per-table series evaluation ([`series`]), and plain-text
//! / CSV output ([`fmt`]).

pub mod fmt;
pub mod plot;
pub mod series;
pub mod shapes;
