//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * divisor rule (table-consistent prime promotion vs the literal
//!   pseudocode) — effect on the real blocked engine;
//! * dimension limit of the partitioning — effect on the real blocked
//!   engine (the CPU analogue of Fig. 4);
//! * level-bucket construction vs rescanning the table per level (the
//!   Alg. 2 line 12 filter the buckets replace).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ndtable::partition::DivisorRule;
use ndtable::{Divisor, LevelBuckets, Shape};
use pcmax_gpu::synth::problem_with_extents;
use std::hint::black_box;

fn bench_divisor_rule(c: &mut Criterion) {
    let problem = problem_with_extents(&[5, 3, 6, 3, 4, 4, 2], 4); // σ = 8640
    let mut g = c.benchmark_group("ablation_divisor_rule");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.sample_size(10);
    for (name, rule) in [
        ("table_consistent", DivisorRule::TableConsistent),
        ("literal_pseudocode", DivisorRule::LiteralPseudocode),
    ] {
        g.bench_function(name, |b| {
            let divisor = Divisor::compute(problem.shape(), 5, rule);
            b.iter(|| black_box(problem.solve_blocked_with(&divisor)).opt)
        });
    }
    g.finish();
}

fn bench_dim_sweep(c: &mut Criterion) {
    let problem = problem_with_extents(&[3, 3, 3, 2, 3, 4, 2, 5, 2], 4); // σ = 12960, 9 dims
    let mut g = c.benchmark_group("ablation_dim_sweep");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.sample_size(10);
    for dim in [3usize, 5, 7, 9] {
        g.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |b, &d| {
            b.iter(|| black_box(problem.solve_blocked(d)).opt)
        });
    }
    g.finish();
}

fn bench_level_buckets_vs_rescan(c: &mut Criterion) {
    let shape = Shape::new(&[4, 4, 6, 6, 2, 3, 3, 2]); // σ = 20736
    let mut g = c.benchmark_group("ablation_level_discovery");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.sample_size(10);
    g.bench_function("bucket_once", |b| {
        b.iter(|| black_box(LevelBuckets::new(&shape)).num_levels())
    });
    g.bench_function("rescan_per_level", |b| {
        // What Algorithm 2 line 12 does: scan all σ cells at every level.
        b.iter(|| {
            let mut total = 0usize;
            for l in 0..=shape.max_level() {
                for flat in 0..shape.size() {
                    if shape.level_of_flat(flat) == l {
                        total += 1;
                    }
                }
            }
            black_box(total)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_divisor_rule,
    bench_dim_sweep,
    bench_level_buckets_vs_rescan
);
criterion_main!(benches);
