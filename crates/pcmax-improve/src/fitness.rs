//! Batched makespan-fitness evaluation: rayon pool or gpu-sim warp model.
//!
//! Both paths compute the *identical* exact integer makespan per
//! chromosome (a u64 load accumulation — safe because every gated
//! [`Instance`] has Σtⱼ ≤ `u64::MAX`), so their outputs agree
//! bit-for-bit under any seed; the audit harness checks exactly that.
//! The difference is the cost model wrapped around the arithmetic:
//!
//! * [`EvalPath::Rayon`] maps the batch across the rayon pool — the
//!   production path.
//! * [`EvalPath::WarpModel`] walks the batch in warp-sized lockstep
//!   chunks and mirrors the work on the gpu-sim device model, following
//!   the island-GA GPU fitness kernel's shape (one thread per
//!   chromosome, chromosome-major layout — which is *strided* across
//!   the warp, the same uncoalesced pattern the paper's §III.B
//!   analyses). While obs recording is enabled the modeled kernel time
//!   lands in `improve.warp_model_ns`, giving the bench trajectory a
//!   hardware-cost account for GA fitness without needing a GPU.

use gpu_sim::{DeviceSpec, GpuSim, KernelDesc, WarpBuilder};
use pcmax_core::instance::Instance;
use rayon::prelude::*;

/// Where a fitness batch is evaluated. Paths agree bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalPath {
    /// Map the batch across the rayon pool.
    #[default]
    Rayon,
    /// Lockstep warp-chunk walk mirrored on the gpu-sim device model.
    WarpModel,
}

impl std::str::FromStr for EvalPath {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "rayon" => Ok(EvalPath::Rayon),
            "warp" => Ok(EvalPath::WarpModel),
            _ => Err(format!("unknown eval path {s:?} (rayon|warp)")),
        }
    }
}

impl std::fmt::Display for EvalPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalPath::Rayon => write!(f, "rayon"),
            EvalPath::WarpModel => write!(f, "warp"),
        }
    }
}

/// Exact makespan of one assignment chromosome. `u64` accumulation is
/// safe: the instance gate caps total work at `u64::MAX`.
pub fn makespan_of(inst: &Instance, assignment: &[usize]) -> u64 {
    debug_assert_eq!(assignment.len(), inst.num_jobs());
    let mut loads = vec![0u64; inst.machines()];
    for (job, &m) in assignment.iter().enumerate() {
        loads[m] += inst.time(job);
    }
    loads.into_iter().max().unwrap_or(0)
}

/// Evaluates a population's makespans on the chosen path.
pub fn evaluate_batch(
    inst: &Instance,
    population: &[Vec<usize>],
    path: EvalPath,
) -> Vec<u64> {
    match path {
        EvalPath::Rayon => population
            .par_iter()
            .map(|chromo| makespan_of(inst, chromo))
            .collect(),
        EvalPath::WarpModel => warp_model_batch(inst, population),
    }
}

/// Lockstep evaluation in warp-sized chunks, with the work mirrored on
/// the device model.
fn warp_model_batch(inst: &Instance, population: &[Vec<usize>]) -> Vec<u64> {
    let spec = DeviceSpec::k40();
    let n = inst.num_jobs() as u64;
    let m = inst.machines() as u64;
    // One thread per chromosome; the builder groups threads into warps
    // of `spec.warp_size` in launch order, so consecutive chromosomes
    // share a lockstep warp.
    let mut builder = WarpBuilder::new(&spec);
    let mut fitness = Vec::with_capacity(population.len());

    for (idx, chromo) in population.iter().enumerate() {
        // The arithmetic is the same `makespan_of` the rayon path runs.
        fitness.push(makespan_of(inst, chromo));
        // Device account: one op per job placement plus the final
        // max-scan over machines; addresses are chromosome-major
        // (`(idx·n + j)·4`), i.e. strided across the warp — each lane
        // touches its own cache lines, the uncoalesced worst case of a
        // population laid out row-per-individual.
        let addresses: Vec<u64> =
            (0..n).map(|j| ((idx as u64) * n + j) * 4).collect();
        builder.thread(n + m, addresses);
    }

    if pcmax_obs::enabled() {
        let warps = builder.finish();
        if !warps.is_empty() {
            let kernel = KernelDesc::new(
                format!("improve.fitness[pop {}]", population.len()),
                warps,
            );
            let mut sim = GpuSim::new(spec, 1);
            sim.launch(0, kernel);
            let report = sim.run();
            let reg = pcmax_obs::registry::global();
            reg.counter("improve.warp_batches").inc();
            reg.histogram("improve.warp_model_ns")
                .record(report.total_ns.max(0.0) as u64);
        }
    }
    fitness
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_population(
        rng: &mut SmallRng,
        n: usize,
        m: usize,
        size: usize,
    ) -> Vec<Vec<usize>> {
        (0..size)
            .map(|_| (0..n).map(|_| rng.gen_range(0..m)).collect())
            .collect()
    }

    #[test]
    fn paths_agree_bit_for_bit() {
        let inst = Instance::new(vec![13, 11, 7, 7, 5, 3, 3, 2, 1, 1], 3);
        let mut rng = SmallRng::seed_from_u64(42);
        // 70 chromosomes: two full warps plus a partial trailing one.
        let pop = random_population(&mut rng, inst.num_jobs(), inst.machines(), 70);
        let a = evaluate_batch(&inst, &pop, EvalPath::Rayon);
        let b = evaluate_batch(&inst, &pop, EvalPath::WarpModel);
        assert_eq!(a, b);
    }

    #[test]
    fn makespan_matches_schedule() {
        let inst = Instance::new(vec![3, 1, 4, 1, 5], 2);
        let assignment = vec![0, 0, 1, 1, 0];
        let s = pcmax_core::Schedule::new(assignment.clone(), 2);
        assert_eq!(makespan_of(&inst, &assignment), s.makespan(&inst));
    }

    #[test]
    fn empty_population_is_fine() {
        let inst = Instance::new(vec![1, 2], 2);
        assert!(evaluate_batch(&inst, &[], EvalPath::Rayon).is_empty());
        assert!(evaluate_batch(&inst, &[], EvalPath::WarpModel).is_empty());
    }

    #[test]
    fn u64_scale_fitness_does_not_wrap() {
        let inst = Instance::new(vec![u64::MAX - 1, 1], 2);
        let piled = vec![0usize, 0];
        assert_eq!(makespan_of(&inst, &piled), u64::MAX);
        let both = evaluate_batch(&inst, &[piled], EvalPath::WarpModel);
        assert_eq!(both, vec![u64::MAX]);
    }
}
