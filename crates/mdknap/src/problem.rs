//! Problem representation.

use ndtable::Shape;
use serde::{Deserialize, Serialize};

/// One item: a profit and a weight per resource dimension.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Item {
    /// Profit gained when the item is taken.
    pub profit: u64,
    /// Resource consumption per dimension.
    pub weights: Vec<usize>,
}

/// A multi-dimensional 0/1 knapsack instance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KnapsackProblem {
    capacities: Vec<usize>,
    items: Vec<Item>,
}

impl KnapsackProblem {
    /// Builds a problem.
    ///
    /// # Panics
    ///
    /// Panics if there are no dimensions, or an item's weight arity does
    /// not match the capacity arity. Items that cannot fit even alone
    /// are allowed (they are simply never taken).
    pub fn new(capacities: Vec<usize>, items: Vec<Item>) -> Self {
        assert!(!capacities.is_empty(), "need at least one dimension");
        for (j, item) in items.iter().enumerate() {
            assert_eq!(
                item.weights.len(),
                capacities.len(),
                "item {j} has {} weights for {} dimensions",
                item.weights.len(),
                capacities.len()
            );
        }
        Self { capacities, items }
    }

    #[inline]
    /// Capacity per resource dimension.
    pub fn capacities(&self) -> &[usize] {
        &self.capacities
    }

    #[inline]
    /// The items.
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    #[inline]
    /// Number of items, `n`.
    pub fn num_items(&self) -> usize {
        self.items.len()
    }

    /// Number of resource dimensions.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.capacities.len()
    }

    /// The DP-table shape (extent `Cᵢ + 1` per dimension).
    pub fn table_shape(&self) -> Shape {
        Shape::for_counts(&self.capacities)
    }

    /// Table size `σ`.
    pub fn table_size(&self) -> usize {
        self.table_shape().size()
    }

    /// Whether a selection (item-index set) fits the capacities; returns
    /// its profit when it does.
    pub fn evaluate(&self, selection: &[usize]) -> Option<u64> {
        let mut used = vec![0usize; self.ndim()];
        let mut profit = 0u64;
        let mut seen = vec![false; self.num_items()];
        for &j in selection {
            assert!(!seen[j], "item {j} selected twice");
            seen[j] = true;
            for (u, &w) in used.iter_mut().zip(&self.items[j].weights) {
                *u += w;
            }
            profit += self.items[j].profit;
        }
        used.iter()
            .zip(&self.capacities)
            .all(|(&u, &c)| u <= c)
            .then_some(profit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> KnapsackProblem {
        KnapsackProblem::new(
            vec![10, 8],
            vec![
                Item { profit: 6, weights: vec![4, 2] },
                Item { profit: 5, weights: vec![3, 5] },
                Item { profit: 9, weights: vec![7, 3] },
            ],
        )
    }

    #[test]
    fn shape_and_size() {
        let p = sample();
        assert_eq!(p.table_shape().extents(), &[11, 9]);
        assert_eq!(p.table_size(), 99);
        assert_eq!(p.ndim(), 2);
    }

    #[test]
    fn evaluate_checks_capacity() {
        let p = sample();
        assert_eq!(p.evaluate(&[0, 2]), None); // 4+7 > 10
        assert_eq!(p.evaluate(&[0, 1]), Some(11)); // (7,7) fits
        assert_eq!(p.evaluate(&[]), Some(0));
    }

    #[test]
    #[should_panic(expected = "selected twice")]
    fn evaluate_rejects_duplicates() {
        sample().evaluate(&[1, 1]);
    }

    #[test]
    #[should_panic(expected = "weights")]
    fn arity_mismatch_rejected() {
        KnapsackProblem::new(
            vec![5, 5],
            vec![Item { profit: 1, weights: vec![1] }],
        );
    }
}
