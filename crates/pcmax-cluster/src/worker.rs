//! One registered worker: address, health state, pooled connection, and
//! per-worker counters.

use crate::ring::worker_seed;
use pcmax_obs::{Counter, Histogram};
use pcmax_serve::Client;
use std::net::SocketAddr;
use std::sync::Mutex;

/// Health state of a worker, driven by heartbeats and by transport
/// failures observed on the solve path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerState {
    /// Whether the ring currently routes to this worker.
    pub up: bool,
    /// Consecutive missed heartbeats / transport failures. Reset to 0 by
    /// any successful round-trip.
    pub missed_beats: u32,
    /// Memory pressure the worker last reported over its `health` verb
    /// (DP-cache bytes as a percentage of its budget, clamped to 100).
    /// 0 until the first heartbeat answers.
    pub pressure_pct: u64,
}

/// Per-worker counters, aggregated into the cluster report.
#[derive(Debug, Default)]
pub struct WorkerCounters {
    /// Solve attempts routed at this worker (including retries).
    pub attempts: Counter,
    /// Requests this worker answered with an `ok` line.
    pub ok: Counter,
    /// Server `err` lines (overloaded, shutting down, …).
    pub server_errors: Counter,
    /// Transport failures (connect/send/recv) against this worker.
    pub transport_errors: Counter,
    /// Requests this worker served after a failover from a
    /// higher-ranked worker.
    pub failover_serves: Counter,
    /// End-to-end coordinator-side latency of requests this worker
    /// served, in µs (recorded only while `pcmax_obs` is enabled).
    pub latency_us: Histogram,
}

/// A registered worker node.
pub struct WorkerNode {
    /// Operator-facing identifier (also the rendezvous identity).
    pub id: String,
    /// The worker's `pcmax serve` TCP endpoint.
    pub addr: SocketAddr,
    /// Rendezvous seed, derived from `id` once at registration.
    pub seed: u64,
    /// Health state (heartbeat- and solve-path-driven).
    pub state: Mutex<WorkerState>,
    /// Pooled line-protocol connection. One in-flight request at a time
    /// (the protocol is strict request/response); concurrent requests to
    /// the same worker serialise on this mutex. `None` until first use
    /// and after any transport failure.
    pub conn: Mutex<Option<Client>>,
    /// Telemetry.
    pub counters: WorkerCounters,
}

impl WorkerNode {
    /// A freshly registered worker, assumed up until proven otherwise.
    pub fn new(id: &str, addr: SocketAddr) -> Self {
        Self {
            id: id.to_string(),
            addr,
            seed: worker_seed(id),
            state: Mutex::new(WorkerState {
                up: true,
                missed_beats: 0,
                pressure_pct: 0,
            }),
            conn: Mutex::new(None),
            counters: WorkerCounters::default(),
        }
    }

    /// Whether the ring currently routes to this worker.
    pub fn is_up(&self) -> bool {
        self.state.lock().expect("worker state poisoned").up
    }

    /// Snapshot of the health state.
    pub fn state(&self) -> WorkerState {
        *self.state.lock().expect("worker state poisoned")
    }

    /// Memory pressure from the last answered heartbeat.
    pub fn pressure_pct(&self) -> u64 {
        self.state.lock().expect("worker state poisoned").pressure_pct
    }

    /// Records the pressure a heartbeat reply carried.
    pub fn set_pressure(&self, pressure_pct: u64) {
        self.state.lock().expect("worker state poisoned").pressure_pct = pressure_pct;
    }

    /// Drops the pooled connection (after a transport failure).
    pub fn drop_conn(&self) {
        *self.conn.lock().expect("worker conn poisoned") = None;
    }
}
