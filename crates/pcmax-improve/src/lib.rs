#![warn(missing_docs)]

//! Anytime, deadline-budgeted schedule improvement for P||Cmax.
//!
//! Every solver arm in the portfolio produces a concrete [`Schedule`];
//! this crate spends whatever request budget is left *after* the solve
//! refining it. The refiner is strictly monotone — it never returns a
//! schedule worse than its input — and deadline-disciplined: it checks
//! the clock between atomic units of work (one descent round, one GA
//! evaluation batch), so it overruns its budget by at most one such
//! unit.
//!
//! Two phases, selected by [`ImproveMode`]:
//!
//! 1. **Greedy descent** ([`ImproveMode::Greedy`]): deterministic
//!    move/swap neighborhood search that relieves a most-loaded machine
//!    by moving one of its jobs to a less-loaded machine or swapping it
//!    against a shorter job elsewhere, accepting lexicographically on
//!    `(makespan, #machines at makespan)` so plateaus where several
//!    machines tie at the maximum still drain.
//! 2. **Island GA** ([`ImproveMode::Ga`]): the descent result seeds a
//!    population split across islands. Each generation every island's
//!    offspring are concatenated into one batch whose makespan fitness
//!    is evaluated either across the rayon pool or on the gpu-sim warp
//!    model ([`EvalPath`]); the two paths agree bit-for-bit because both
//!    run the identical integer load accumulation — the warp model only
//!    adds a modeled-hardware cost account. Migration is a deterministic
//!    ring (island *i*'s best replaces island *i+1*'s worst every
//!    [`ga::MIGRATION_INTERVAL`] generations), and all randomness flows
//!    from one splitmix-seeded [`rand::rngs::SmallRng`], so a fixed
//!    [`ImproveConfig::seed`] reproduces the run exactly.
//!
//! Boundary discipline: [`improve`] validates its input schedule on
//! entry ([`Schedule::validate`]) and recomputes the output makespan
//! from first principles on exit ([`Schedule::recompute_makespan`]);
//! the reported [`ImproveOutcome::makespan`] is always the recomputed
//! value, never a running counter.

use pcmax_core::instance::Instance;
use pcmax_core::schedule::Schedule;
use std::time::{Duration, Instant};

pub mod descent;
pub mod fitness;
pub mod ga;

pub use fitness::{evaluate_batch, EvalPath};

/// Which improvement pipeline to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImproveMode {
    /// Return the input untouched (the improver is a no-op).
    Off,
    /// Deterministic move/swap descent only.
    Greedy,
    /// Descent, then a seeded island GA on the descent result.
    Ga {
        /// Number of islands (≥ 1).
        islands: usize,
        /// Population per island (≥ 2).
        pop: usize,
    },
}

impl ImproveMode {
    /// Default GA shape when `ga` is requested without parameters.
    pub const DEFAULT_GA: ImproveMode = ImproveMode::Ga { islands: 4, pop: 16 };
}

impl std::str::FromStr for ImproveMode {
    type Err = String;

    /// Parses `off`, `greedy`, `ga`, or `ga:ISLANDS,POP`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => return Ok(ImproveMode::Off),
            "greedy" => return Ok(ImproveMode::Greedy),
            "ga" => return Ok(ImproveMode::DEFAULT_GA),
            _ => {}
        }
        if let Some(rest) = s.strip_prefix("ga:") {
            let (islands, pop) = rest
                .split_once(',')
                .ok_or_else(|| format!("expected ga:ISLANDS,POP, got {s:?}"))?;
            let islands: usize = islands
                .parse()
                .map_err(|_| format!("bad island count in {s:?}"))?;
            let pop: usize = pop.parse().map_err(|_| format!("bad population in {s:?}"))?;
            if islands == 0 || pop < 2 {
                return Err(format!("need ≥1 island and population ≥2, got {s:?}"));
            }
            return Ok(ImproveMode::Ga { islands, pop });
        }
        Err(format!("unknown improve mode {s:?} (off|greedy|ga[:I,P])"))
    }
}

impl std::fmt::Display for ImproveMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImproveMode::Off => write!(f, "off"),
            ImproveMode::Greedy => write!(f, "greedy"),
            ImproveMode::Ga { islands, pop } => write!(f, "ga:{islands},{pop}"),
        }
    }
}

/// Configuration for one [`improve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImproveConfig {
    /// Pipeline selection.
    pub mode: ImproveMode,
    /// Wall-clock budget; the improver overruns it by at most one
    /// descent round or one GA evaluation batch.
    pub budget: Duration,
    /// Seed for every random decision (GA only); fixed seed → identical
    /// output schedule.
    pub seed: u64,
    /// Hard cap on descent rounds, binding when the budget is generous —
    /// it makes short runs reproducible independent of host speed.
    pub max_descent_rounds: usize,
    /// Hard cap on GA generations, same role as `max_descent_rounds`.
    pub max_generations: usize,
    /// Where GA fitness batches are evaluated.
    pub eval: EvalPath,
}

impl Default for ImproveConfig {
    fn default() -> Self {
        Self {
            mode: ImproveMode::Greedy,
            budget: Duration::from_millis(2),
            seed: 0x1d0_c0ffee,
            max_descent_rounds: 100_000,
            max_generations: 64,
            eval: EvalPath::Rayon,
        }
    }
}

/// What one [`improve`] call did — fed into `improve.*` obs metrics and
/// the serve stats JSON.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ImproveStats {
    /// Descent rounds attempted (including the final non-improving one).
    pub rounds: u64,
    /// Descent moves/swaps actually applied.
    pub accepted_moves: u64,
    /// GA generations evaluated.
    pub generations: u64,
    /// Chromosomes whose fitness was computed (all paths).
    pub evaluations: u64,
    /// Makespan of the validated input schedule.
    pub initial_makespan: u64,
    /// Recomputed makespan of the returned schedule.
    pub final_makespan: u64,
    /// Wall-clock spent inside the improver, µs.
    pub budget_used_us: u64,
}

/// An improved schedule plus its recomputed makespan and run stats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImproveOutcome {
    /// The best schedule found (never worse than the input).
    pub schedule: Schedule,
    /// `schedule.recompute_makespan(inst)` — the boundary-checked value.
    pub makespan: u64,
    /// What the run did.
    pub stats: ImproveStats,
}

/// Refines `input` within `cfg.budget`, returning the best schedule
/// found. Errors only if the input schedule fails
/// [`Schedule::validate`]; a zero budget or [`ImproveMode::Off`] returns
/// the input unchanged (monotone best-so-far invariant: the output
/// makespan is ≤ the input makespan, always).
pub fn improve(
    inst: &Instance,
    input: &Schedule,
    cfg: &ImproveConfig,
) -> Result<ImproveOutcome, String> {
    let initial_makespan = input.validate(inst)?;
    let started = Instant::now();
    let deadline = started + cfg.budget;
    let mut stats = ImproveStats {
        initial_makespan,
        final_makespan: initial_makespan,
        ..ImproveStats::default()
    };

    let schedule = match cfg.mode {
        ImproveMode::Off => input.clone(),
        ImproveMode::Greedy => descent::descend(
            inst,
            input,
            deadline,
            cfg.max_descent_rounds,
            &mut stats,
        ),
        ImproveMode::Ga { islands, pop } => {
            let seeded = descent::descend(
                inst,
                input,
                deadline,
                cfg.max_descent_rounds,
                &mut stats,
            );
            ga::run(inst, &seeded, cfg, islands, pop, deadline, &mut stats)
        }
    };

    // Boundary check on the way out: the reported makespan is recomputed
    // from the assignment, and monotonicity is enforced structurally —
    // if refinement somehow regressed (it cannot: both phases track
    // best-so-far), the input wins.
    let makespan = schedule.recompute_makespan(inst);
    let (schedule, makespan) = if makespan <= initial_makespan {
        (schedule, makespan)
    } else {
        (input.clone(), initial_makespan)
    };
    stats.final_makespan = makespan;
    stats.budget_used_us = started.elapsed().as_micros().min(u64::MAX as u128) as u64;

    emit_obs(&stats);
    Ok(ImproveOutcome {
        schedule,
        makespan,
        stats,
    })
}

/// Records `improve.*` counters/histograms on the global registry while
/// obs recording is enabled (the same gating idiom as `sparse.*`).
fn emit_obs(stats: &ImproveStats) {
    if !pcmax_obs::enabled() {
        return;
    }
    let reg = pcmax_obs::registry::global();
    reg.counter("improve.calls").inc();
    reg.counter("improve.rounds").add(stats.rounds);
    reg.counter("improve.accepted_moves").add(stats.accepted_moves);
    reg.counter("improve.generations").add(stats.generations);
    reg.counter("improve.evaluations").add(stats.evaluations);
    if stats.final_makespan < stats.initial_makespan {
        reg.counter("improve.improved").inc();
    }
    reg.histogram("improve.budget_used_us").record(stats.budget_used_us);
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcmax_core::heuristics::lpt;

    fn inst() -> Instance {
        Instance::new(vec![9, 7, 6, 5, 4, 4, 3, 2, 2], 3)
    }

    /// A deliberately bad schedule: everything piled on machine 0.
    fn piled(inst: &Instance) -> Schedule {
        Schedule::new(vec![0; inst.num_jobs()], inst.machines())
    }

    #[test]
    fn mode_parses_and_displays() {
        assert_eq!("off".parse::<ImproveMode>().unwrap(), ImproveMode::Off);
        assert_eq!("greedy".parse::<ImproveMode>().unwrap(), ImproveMode::Greedy);
        assert_eq!("ga".parse::<ImproveMode>().unwrap(), ImproveMode::DEFAULT_GA);
        assert_eq!(
            "ga:2,8".parse::<ImproveMode>().unwrap(),
            ImproveMode::Ga { islands: 2, pop: 8 }
        );
        assert_eq!(ImproveMode::Ga { islands: 2, pop: 8 }.to_string(), "ga:2,8");
        assert!("ga:0,8".parse::<ImproveMode>().is_err());
        assert!("ga:2,1".parse::<ImproveMode>().is_err());
        assert!("anneal".parse::<ImproveMode>().is_err());
        for m in [ImproveMode::Off, ImproveMode::Greedy, ImproveMode::DEFAULT_GA] {
            assert_eq!(m.to_string().parse::<ImproveMode>().unwrap(), m);
        }
    }

    #[test]
    fn off_returns_input_unchanged() {
        let inst = inst();
        let s = piled(&inst);
        let cfg = ImproveConfig {
            mode: ImproveMode::Off,
            ..ImproveConfig::default()
        };
        let out = improve(&inst, &s, &cfg).unwrap();
        assert_eq!(out.schedule, s);
        assert_eq!(out.makespan, s.makespan(&inst));
        assert_eq!(out.stats.rounds, 0);
    }

    #[test]
    fn greedy_improves_a_piled_schedule() {
        let inst = inst();
        let s = piled(&inst);
        let cfg = ImproveConfig {
            budget: Duration::from_secs(5),
            ..ImproveConfig::default()
        };
        let out = improve(&inst, &s, &cfg).unwrap();
        assert!(out.makespan < s.makespan(&inst));
        assert_eq!(out.schedule.validate(&inst).unwrap(), out.makespan);
        assert!(out.stats.accepted_moves > 0);
        // Σtⱼ = 42 over 3 machines: the pile (42) must come down close
        // to the area bound (14); move/swap descent may stop one short
        // of the perfect split at its local optimum.
        assert!(out.makespan <= 15, "descent stalled at {}", out.makespan);
    }

    #[test]
    fn zero_budget_is_a_noop_but_still_valid() {
        let inst = inst();
        let s = piled(&inst);
        let cfg = ImproveConfig {
            budget: Duration::ZERO,
            mode: ImproveMode::DEFAULT_GA,
            ..ImproveConfig::default()
        };
        let out = improve(&inst, &s, &cfg).unwrap();
        assert!(out.makespan <= s.makespan(&inst));
        assert_eq!(out.schedule.validate(&inst).unwrap(), out.makespan);
    }

    #[test]
    fn ga_never_worse_than_lpt_input_and_is_deterministic() {
        let inst = Instance::new(
            vec![23, 19, 17, 17, 13, 11, 11, 7, 7, 5, 5, 3, 3, 2, 2, 1],
            4,
        );
        let s = lpt(&inst);
        let cfg = ImproveConfig {
            mode: ImproveMode::Ga { islands: 2, pop: 8 },
            budget: Duration::from_secs(60),
            max_generations: 12,
            max_descent_rounds: 100,
            ..ImproveConfig::default()
        };
        let a = improve(&inst, &s, &cfg).unwrap();
        let b = improve(&inst, &s, &cfg).unwrap();
        assert!(a.makespan <= s.makespan(&inst));
        assert_eq!(a.schedule, b.schedule, "fixed seed must reproduce");
        assert_eq!(a.makespan, b.makespan);
        assert!(a.stats.generations > 0);
        assert!(a.stats.evaluations > 0);
    }

    #[test]
    fn rejects_invalid_input() {
        let inst = inst();
        let wrong = Schedule::new(vec![0, 1], 3);
        assert!(improve(&inst, &wrong, &ImproveConfig::default()).is_err());
    }
}
