//! Extents and row-major index arithmetic for dense higher-dimensional tables.

use serde::{Deserialize, Serialize};

/// The extents of a dense higher-dimensional table.
///
/// For the `P||Cmax` DP the table for a class-count vector
/// `N = (n_1, …, n_d)` has extent `n_i + 1` in dimension `i` (cell `v`
/// exists for every `0 ≤ v_i ≤ n_i`). `Shape` stores those extents and owns
/// all flat ↔ multi index conversions in *row-major* order, the layout the
/// paper's Algorithm 2 assumes ("the i-th entry of DP-table in row-major
/// order").
///
/// Row-major order has a property the sequential DP relies on: if
/// `u ≤ v` componentwise and `u ≠ v`, then `flatten(u) < flatten(v)`, so a
/// plain flat-order sweep is a valid topological order of the recurrence.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    extents: Vec<usize>,
    /// Row-major strides; `strides[i]` = product of extents after `i`.
    strides: Vec<usize>,
    /// Total number of cells (product of extents).
    size: usize,
}

impl Shape {
    /// Builds a shape from per-dimension extents.
    ///
    /// # Panics
    ///
    /// Panics if `extents` is empty, any extent is zero, or the total size
    /// overflows `usize`.
    pub fn new(extents: &[usize]) -> Self {
        assert!(!extents.is_empty(), "Shape requires at least one dimension");
        assert!(
            extents.iter().all(|&e| e > 0),
            "Shape extents must be positive, got {extents:?}"
        );
        let mut strides = vec![0usize; extents.len()];
        let mut acc: usize = 1;
        for (i, &e) in extents.iter().enumerate().rev() {
            strides[i] = acc;
            acc = acc
                .checked_mul(e)
                .expect("Shape size overflows usize");
        }
        Self {
            extents: extents.to_vec(),
            strides,
            size: acc,
        }
    }

    /// Builds the DP-table shape for a class-count vector `N`: extent
    /// `n_i + 1` per dimension.
    pub fn for_counts(counts: &[usize]) -> Self {
        let extents: Vec<usize> = counts.iter().map(|&n| n + 1).collect();
        Self::new(&extents)
    }

    /// Number of dimensions.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.extents.len()
    }

    /// Per-dimension extents.
    #[inline]
    pub fn extents(&self) -> &[usize] {
        &self.extents
    }

    /// Row-major strides.
    #[inline]
    pub fn strides(&self) -> &[usize] {
        &self.strides
    }

    /// Total number of cells, `σ = Π extents`.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of dimensions with extent > 1 — the paper's "non-zero
    /// dimensions" (a class with `n_i = 0` contributes extent 1 and no
    /// real dimensionality).
    pub fn nonzero_dims(&self) -> usize {
        self.extents.iter().filter(|&&e| e > 1).count()
    }

    /// The largest anti-diagonal level, `Σᵢ (extentᵢ − 1)`; for the DP
    /// table of `N` this equals `n' = Σᵢ nᵢ`, the number of long jobs.
    pub fn max_level(&self) -> usize {
        self.extents.iter().map(|&e| e - 1).sum()
    }

    /// Whether `idx` is a valid multi-index for this shape.
    pub fn contains(&self, idx: &[usize]) -> bool {
        idx.len() == self.ndim() && idx.iter().zip(&self.extents).all(|(&i, &e)| i < e)
    }

    /// Row-major flat index of a multi-index.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `idx` is out of bounds.
    #[inline]
    pub fn flatten(&self, idx: &[usize]) -> usize {
        debug_assert!(self.contains(idx), "index {idx:?} out of {:?}", self.extents);
        idx.iter()
            .zip(&self.strides)
            .map(|(&i, &s)| i * s)
            .sum()
    }

    /// Multi-index of a row-major flat index, written into `out`.
    ///
    /// Avoids allocating in hot loops; `out.len()` must equal `ndim()`.
    #[inline]
    pub fn unflatten_into(&self, mut flat: usize, out: &mut [usize]) {
        debug_assert!(flat < self.size, "flat index {flat} out of {}", self.size);
        debug_assert_eq!(out.len(), self.ndim());
        for (o, &s) in out.iter_mut().zip(&self.strides) {
            *o = flat / s;
            flat %= s;
        }
    }

    /// Multi-index of a row-major flat index (allocating convenience form).
    pub fn unflatten(&self, flat: usize) -> Vec<usize> {
        let mut out = vec![0; self.ndim()];
        self.unflatten_into(flat, &mut out);
        out
    }

    /// Anti-diagonal level of a flat index: the sum of its multi-index
    /// components. Computed without materialising the multi-index.
    #[inline]
    pub fn level_of_flat(&self, mut flat: usize) -> usize {
        let mut level = 0;
        for &s in &self.strides {
            level += flat / s;
            flat %= s;
        }
        level
    }

    /// Iterator over all multi-indices in row-major order.
    pub fn iter(&self) -> crate::index::MultiIndexIter<'_> {
        crate::index::MultiIndexIter::new(self)
    }

    /// Returns a shape with all extent-1 dimensions removed ("squeezed"),
    /// plus the map from squeezed dimension to original dimension.
    ///
    /// The DP only gains parallel structure from non-trivial dimensions;
    /// the paper reports the number of *non-zero dimensions* for exactly
    /// this reason. If every extent is 1 the result keeps one dimension so
    /// the shape stays valid.
    pub fn squeeze(&self) -> (Shape, Vec<usize>) {
        let kept: Vec<usize> = (0..self.ndim()).filter(|&i| self.extents[i] > 1).collect();
        if kept.is_empty() {
            return (Shape::new(&[1]), vec![0]);
        }
        let extents: Vec<usize> = kept.iter().map(|&i| self.extents[i]).collect();
        (Shape::new(&extents), kept)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(&[3, 4, 5]);
        assert_eq!(s.strides(), &[20, 5, 1]);
        assert_eq!(s.size(), 60);
        assert_eq!(s.ndim(), 3);
    }

    #[test]
    fn for_counts_adds_one() {
        let s = Shape::for_counts(&[2, 0, 3]);
        assert_eq!(s.extents(), &[3, 1, 4]);
        assert_eq!(s.size(), 12);
        assert_eq!(s.nonzero_dims(), 2);
    }

    #[test]
    fn flatten_unflatten_roundtrip_exhaustive() {
        let s = Shape::new(&[2, 3, 4]);
        for flat in 0..s.size() {
            let idx = s.unflatten(flat);
            assert_eq!(s.flatten(&idx), flat);
        }
    }

    #[test]
    fn level_of_flat_matches_component_sum() {
        let s = Shape::new(&[3, 2, 4]);
        for flat in 0..s.size() {
            let idx = s.unflatten(flat);
            assert_eq!(s.level_of_flat(flat), idx.iter().sum::<usize>());
        }
    }

    #[test]
    fn max_level_is_sum_of_extent_minus_one() {
        let s = Shape::new(&[3, 2, 4]);
        assert_eq!(s.max_level(), 2 + 1 + 3);
        assert_eq!(Shape::for_counts(&[5, 7]).max_level(), 12);
    }

    #[test]
    fn row_major_dominance_is_topological() {
        // u ≤ v componentwise and u ≠ v implies flatten(u) < flatten(v).
        let s = Shape::new(&[3, 3, 3]);
        for fv in 0..s.size() {
            let v = s.unflatten(fv);
            for fu in 0..s.size() {
                let u = s.unflatten(fu);
                let dominated = u.iter().zip(&v).all(|(a, b)| a <= b) && u != v;
                if dominated {
                    assert!(fu < fv, "u={u:?} v={v:?}");
                }
            }
        }
    }

    #[test]
    fn squeeze_removes_trivial_dims() {
        let s = Shape::new(&[1, 4, 1, 3, 1]);
        let (sq, map) = s.squeeze();
        assert_eq!(sq.extents(), &[4, 3]);
        assert_eq!(map, vec![1, 3]);
        let (all_one, map1) = Shape::new(&[1, 1]).squeeze();
        assert_eq!(all_one.extents(), &[1]);
        assert_eq!(map1, vec![0]);
    }

    #[test]
    fn contains_checks_bounds_and_arity() {
        let s = Shape::new(&[2, 2]);
        assert!(s.contains(&[1, 1]));
        assert!(!s.contains(&[2, 0]));
        assert!(!s.contains(&[0]));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_extent_rejected() {
        Shape::new(&[3, 0]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_extents_rejected() {
        Shape::new(&[]);
    }
}
